#ifndef CCAM_QUERY_HIERARCHY_H_
#define CCAM_QUERY_HIERARCHY_H_

#include "src/common/result.h"
#include "src/core/access_method.h"
#include "src/query/search.h"

namespace ccam {

/// Bidirectional shortest-path search over the contraction-hierarchy
/// overlay: a forward Dijkstra from `src` relaxing upward arcs and a
/// backward Dijkstra from `dst` relaxing downward arcs, meeting at the top
/// of the hierarchy. Returns the same SearchResult contract as
/// ShortestPathDijkstra — the true shortest-path cost, the full node path
/// (shortcuts are unpacked through their middle nodes), `nodes_expanded` =
/// settled nodes across both directions, and `page_accesses` = the query's
/// overlay-page plus data-page accesses (per session where applicable).
///
/// Both searches read only overlay pages; because every query climbs to
/// the top of the hierarchy — packed into the first, hottest overlay pages
/// — long-distance queries touch orders of magnitude fewer pages than A*
/// over the data file. Fails with NotSupported when `am` has no valid
/// overlay (not built, or invalidated by a mutation).
Result<SearchResult> ShortestPathCH(AccessMethod* am, NodeId src, NodeId dst);

/// Region-batched entry point: answers the origin/destination pairs
/// back-to-back under one "query.hierarchy_batch" span, one Result per
/// pair in input order (a per-pair failure fails only its own entry).
/// Every CH query climbs through the same top-of-hierarchy overlay pages,
/// so a batch re-reads them from the overlay pool instead of per query.
std::vector<Result<SearchResult>> ShortestPathCHBatch(
    AccessMethod* am, const std::vector<std::pair<NodeId, NodeId>>& pairs);

}  // namespace ccam

#endif  // CCAM_QUERY_HIERARCHY_H_
