#ifndef CCAM_QUERY_TRACE_H_
#define CCAM_QUERY_TRACE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/access_method.h"

namespace ccam {

/// A trace-driven workload: a text script of operations replayed against
/// an access method with per-operation-type I/O accounting. Lets users
/// benchmark their own workloads (and regression-test layouts) without
/// writing code.
///
/// Format — one operation per line, '#' comments allowed:
///   find <id>
///   get-successors <id>
///   get-a-successor <from> <to>
///   insert-node <id> <x> <y>
///   insert-edge <u> <v> <cost>
///   delete-edge <u> <v>
///   delete-node <id>
///   route <id> <id> <id> ...
struct TraceOp {
  enum class Kind {
    kFind,
    kGetSuccessors,
    kGetASuccessor,
    kInsertNode,
    kInsertEdge,
    kDeleteEdge,
    kDeleteNode,
    kRoute,
  };
  Kind kind;
  std::vector<NodeId> nodes;  // operands in order of appearance
  double x = 0.0, y = 0.0;    // insert-node
  float cost = 0.0f;          // insert-edge
};

const char* TraceOpKindName(TraceOp::Kind kind);

/// Parses a trace script. Fails with Corruption on the first bad line.
Result<std::vector<TraceOp>> ParseTrace(const std::string& text);

/// Loads and parses a trace file.
Result<std::vector<TraceOp>> LoadTrace(const std::string& path);

/// Replay outcome, per operation kind and overall.
struct TraceReport {
  struct PerKind {
    size_t count = 0;
    size_t failed = 0;  // e.g. find of a deleted node
    uint64_t page_accesses = 0;

    double MeanAccesses() const {
      return count == 0 ? 0.0
                        : static_cast<double>(page_accesses) /
                              static_cast<double>(count);
    }
  };
  std::vector<std::pair<TraceOp::Kind, PerKind>> per_kind;
  uint64_t total_accesses = 0;
  size_t total_ops = 0;

  std::string ToString() const;
};

/// Replays `ops` against `am`; update operations use `policy`. Operation
/// failures (NotFound etc.) are tallied, not fatal — traces may reference
/// state that earlier operations removed.
Result<TraceReport> ReplayTrace(AccessMethod* am,
                                const std::vector<TraceOp>& ops,
                                ReorgPolicy policy);

}  // namespace ccam

#endif  // CCAM_QUERY_TRACE_H_
