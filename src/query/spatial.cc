#include "src/query/spatial.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/request_context.h"
#include "src/index/zorder.h"

namespace ccam {

namespace {

/// Composite Z-key: the 32-bit Morton code in the high half, the node-id
/// in the low half — keeps B+ tree keys unique when nodes share a cell.
uint64_t CompositeKey(uint64_t code, NodeId id) {
  return (code << 32) | id;
}

uint64_t CodePart(uint64_t key) { return key >> 32; }

}  // namespace

SpatialQueryEngine::SpatialQueryEngine() = default;

uint64_t SpatialQueryEngine::CodeOf(double x, double y) const {
  return ZOrderFromPoint(x, y, min_coord_, max_coord_);
}

Result<std::unique_ptr<SpatialQueryEngine>> SpatialQueryEngine::Build(
    AccessMethod* am) {
  auto engine = std::unique_ptr<SpatialQueryEngine>(new SpatialQueryEngine());
  engine->am_ = am;
  engine->zdisk_ = std::make_unique<DiskManager>(1024);
  engine->zpool_ = std::make_unique<BufferPool>(engine->zdisk_.get(), 64);
  engine->ztree_ = std::make_unique<BPlusTree>(engine->zdisk_.get(),
                                               engine->zpool_.get());

  // Scan every record once for coordinates. LiveNodeIds() merges the
  // mutation overlay when `am` is a snapshot session.
  std::vector<NodeId> ids = am->LiveNodeIds();

  struct Point {
    NodeId id;
    double x;
    double y;
  };
  std::vector<Point> points;
  points.reserve(ids.size());
  bool first = true;
  RequestContext* ctx = am->request_context();
  for (NodeId id : ids) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    NodeRecord rec;
    CCAM_ASSIGN_OR_RETURN(rec, am->Find(id));
    points.push_back({id, rec.x, rec.y});
    if (first) {
      engine->min_coord_ = std::min(rec.x, rec.y);
      engine->max_coord_ = std::max(rec.x, rec.y);
      first = false;
    } else {
      engine->min_coord_ = std::min({engine->min_coord_, rec.x, rec.y});
      engine->max_coord_ = std::max({engine->max_coord_, rec.x, rec.y});
    }
  }

  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(points.size());
  for (const Point& p : points) {
    entries.emplace_back(CompositeKey(engine->CodeOf(p.x, p.y), p.id), p.id);
    engine->rtree_.Insert(Rect::Point(p.x, p.y), p.id);
  }
  std::sort(entries.begin(), entries.end());
  CCAM_RETURN_NOT_OK(engine->ztree_->BulkLoad(entries));

  // The build scan is not part of any query measurement.
  am->ResetIoStats();
  return engine;
}

Status SpatialQueryEngine::InsertNode(NodeId id, double x, double y) {
  CCAM_RETURN_NOT_OK(ztree_->Insert(CompositeKey(CodeOf(x, y), id), id));
  rtree_.Insert(Rect::Point(x, y), id);
  return Status::OK();
}

Status SpatialQueryEngine::RemoveNode(NodeId id, double x, double y) {
  CCAM_RETURN_NOT_OK(ztree_->Delete(CompositeKey(CodeOf(x, y), id)));
  return rtree_.Delete(Rect::Point(x, y), id);
}

Result<SpatialQueryEngine::WindowResult> SpatialQueryEngine::WindowQuery(
    double xmin, double ymin, double xmax, double ymax, IndexKind kind) {
  if (xmin > xmax || ymin > ymax) {
    return Status::InvalidArgument("inverted query window");
  }
  WindowResult result;
  QuerySpan span(am_->metrics(), "query.spatial");
  IoStats before = am_->DataIoStats();

  std::vector<NodeId> candidates;
  if (kind == IndexKind::kRTree) {
    for (uint64_t v : rtree_.Search({xmin, ymin, xmax, ymax})) {
      candidates.push_back(static_cast<NodeId>(v));
    }
    std::sort(candidates.begin(), candidates.end());
  } else {
    // Z-order scan with BIGMIN skipping over dead curve segments.
    const uint64_t min_code = CodeOf(xmin, ymin);
    const uint64_t max_code = CodeOf(xmax, ymax);
    const uint64_t end_key = CompositeKey(max_code, kInvalidNodeId);
    auto it = ztree_->Seek(CompositeKey(min_code, 0));
    while (it.Valid() && it.key() <= end_key) {
      uint64_t code = CodePart(it.key());
      ++result.entries_scanned;
      if (ZOrderInRect(code, min_code, max_code)) {
        candidates.push_back(static_cast<NodeId>(it.value()));
        it.Next();
        continue;
      }
      uint64_t bigmin = ZOrderBigMin(code, min_code, max_code);
      if (bigmin <= code) break;  // nothing above: done
      ++result.bigmin_jumps;
      it = ztree_->Seek(CompositeKey(bigmin, 0));
    }
  }

  // Fetch the candidate records through the access method (this is where
  // the clustering pays off) and filter exactly on the coordinates — the
  // Z-cells are quantized, so boundary cells may hold near-misses.
  RequestContext* ctx = am_->request_context();
  for (NodeId id : candidates) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    NodeRecord rec;
    CCAM_ASSIGN_OR_RETURN(rec, am_->Find(id));
    if (rec.x >= xmin && rec.x <= xmax && rec.y >= ymin && rec.y <= ymax) {
      result.records.push_back(std::move(rec));
    }
  }
  IoStats after = am_->DataIoStats();
  result.data_page_accesses = (after - before).Accesses();
  return result;
}

Result<SpatialQueryEngine::NearestResult>
SpatialQueryEngine::NearestNeighbors(double x, double y, size_t k) {
  NearestResult result;
  QuerySpan span(am_->metrics(), "query.spatial");
  IoStats before = am_->DataIoStats();
  RequestContext* ctx = am_->request_context();
  for (uint64_t v : rtree_.KNearest(x, y, k)) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    NodeRecord rec;
    CCAM_ASSIGN_OR_RETURN(rec, am_->Find(static_cast<NodeId>(v)));
    result.records.push_back(std::move(rec));
  }
  IoStats after = am_->DataIoStats();
  result.data_page_accesses = (after - before).Accesses();
  return result;
}

}  // namespace ccam
