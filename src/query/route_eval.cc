#include "src/query/route_eval.h"

#include "src/common/metrics.h"
#include "src/common/request_context.h"

namespace ccam {

Result<RouteEvalResult> EvaluateRoute(AccessMethod* am, const Route& route) {
  RouteEvalResult result;
  if (route.nodes.empty()) return result;
  QuerySpan span(am->metrics(), "query.route_eval");

  IoStats before = am->DataIoStats();
  NodeRecord current;
  CCAM_ASSIGN_OR_RETURN(current, am->Find(route.nodes[0]));
  RequestContext* ctx = am->request_context();
  for (size_t i = 1; i < route.nodes.size(); ++i) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    NodeId next = route.nodes[i];
    float cost;
    {
      auto res = current.SuccessorCost(next);
      if (!res.ok()) return res.status();
      cost = *res;
    }
    CCAM_ASSIGN_OR_RETURN(current, am->GetASuccessor(current.id, next));
    result.total_cost += cost;
    ++result.num_edges;
  }
  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

std::vector<Result<RouteEvalResult>> EvaluateRouteBatch(
    AccessMethod* am, const std::vector<const Route*>& routes) {
  QuerySpan span(am->metrics(), "query.route_eval_batch");
  std::vector<Result<RouteEvalResult>> results;
  results.reserve(routes.size());
  for (const Route* route : routes) {
    results.push_back(EvaluateRoute(am, *route));
  }
  return results;
}

Result<double> MeanRouteEvalAccesses(AccessMethod* am,
                                     const std::vector<Route>& routes) {
  if (routes.empty()) return 0.0;
  uint64_t total = 0;
  for (const Route& route : routes) {
    RouteEvalResult one;
    CCAM_ASSIGN_OR_RETURN(one, EvaluateRoute(am, route));
    total += one.page_accesses;
  }
  return static_cast<double>(total) / static_cast<double>(routes.size());
}

}  // namespace ccam
