#include "src/query/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "src/common/metrics.h"
#include "src/common/request_context.h"

namespace ccam {

Result<ReachabilityResult> ReachableFrom(AccessMethod* am, NodeId source,
                                         int max_depth) {
  ReachabilityResult result;
  QuerySpan span(am->metrics(), "query.traversal");
  IoStats before = am->DataIoStats();

  NodeRecord src;
  CCAM_ASSIGN_OR_RETURN(src, am->Find(source));
  std::unordered_set<NodeId> seen{source};
  std::deque<std::pair<NodeId, int>> frontier{{source, 0}};
  RequestContext* ctx = am->request_context();
  while (!frontier.empty()) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    auto [cur, depth] = frontier.front();
    frontier.pop_front();
    result.nodes.push_back(cur);
    if (max_depth >= 0 && depth >= max_depth) continue;
    std::vector<NodeRecord> successors;
    CCAM_ASSIGN_OR_RETURN(successors, am->GetSuccessors(cur));
    for (const NodeRecord& succ : successors) {
      if (seen.insert(succ.id).second) {
        frontier.emplace_back(succ.id, depth + 1);
      }
    }
  }

  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

Result<ClosureSample> SampleTransitiveClosure(
    AccessMethod* am, const std::vector<NodeId>& sources, int max_depth) {
  ClosureSample sample;
  if (sources.empty()) return sample;
  size_t total_reachable = 0;
  for (NodeId source : sources) {
    ReachabilityResult one;
    CCAM_ASSIGN_OR_RETURN(one, ReachableFrom(am, source, max_depth));
    total_reachable += one.nodes.size();
    sample.page_accesses += one.page_accesses;
  }
  sample.mean_reachable =
      static_cast<double>(total_reachable) / sources.size();
  return sample;
}

Result<ComponentsResult> WeaklyConnectedComponents(AccessMethod* am) {
  ComponentsResult result;
  QuerySpan span(am->metrics(), "query.traversal");
  IoStats before = am->DataIoStats();

  // Snapshot the node set up front (for paged files this is the in-memory
  // page map; snapshot sessions merge their mutation overlay).
  std::vector<NodeId> all = am->LiveNodeIds();
  std::unordered_set<NodeId> live(all.begin(), all.end());

  std::unordered_set<NodeId> seen;
  RequestContext* ctx = am->request_context();
  for (NodeId start : all) {
    if (seen.count(start)) continue;
    size_t size = 0;
    std::deque<NodeId> frontier{start};
    seen.insert(start);
    while (!frontier.empty()) {
      if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
      NodeId cur = frontier.front();
      frontier.pop_front();
      ++size;
      NodeRecord rec;
      CCAM_ASSIGN_OR_RETURN(rec, am->Find(cur));
      for (NodeId nbr : rec.Neighbors()) {
        if (live.count(nbr) && seen.insert(nbr).second) {
          frontier.push_back(nbr);
        }
      }
    }
    result.components.emplace_back(start, size);
  }

  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

}  // namespace ccam
