#ifndef CCAM_QUERY_ROUTE_EVAL_H_
#define CCAM_QUERY_ROUTE_EVAL_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/access_method.h"
#include "src/graph/route.h"

namespace ccam {

/// Outcome of one route-evaluation query.
struct RouteEvalResult {
  /// Sum of the traversed edge costs (e.g. total travel time).
  double total_cost = 0.0;
  /// Number of edges traversed (route length - 1).
  size_t num_edges = 0;
  /// Data-page accesses charged to this query.
  uint64_t page_accesses = 0;
};

/// Evaluates the aggregate property of a route (paper Section 2.3): a
/// Find() on the first node followed by a Get-A-successor() per hop. Edge
/// costs are read from the successor-lists, so a high CRR means most hops
/// cost no I/O. Fails with NotFound when the route uses a missing node or
/// edge.
Result<RouteEvalResult> EvaluateRoute(AccessMethod* am, const Route& route);

/// Evaluates a batch of routes and returns the mean page accesses per
/// route — the quantity plotted in the paper's Figure 6.
Result<double> MeanRouteEvalAccesses(AccessMethod* am,
                                     const std::vector<Route>& routes);

/// Region-batched entry point: evaluates `routes` back-to-back under one
/// "query.route_eval_batch" span, returning one Result per route in input
/// order. A per-route failure (missing node or edge) fails only its own
/// entry, never the rest of the batch. The serving layer groups concurrent
/// requests whose origin nodes share a data page and calls this with that
/// page pinned, so the batch's hot pages are fetched once and every
/// subsequent route reads them as buffer hits.
std::vector<Result<RouteEvalResult>> EvaluateRouteBatch(
    AccessMethod* am, const std::vector<const Route*>& routes);

}  // namespace ccam

#endif  // CCAM_QUERY_ROUTE_EVAL_H_
