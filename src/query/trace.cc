#include "src/query/trace.h"

#include <fstream>
#include <map>
#include <sstream>

#include "src/query/route_eval.h"

namespace ccam {

const char* TraceOpKindName(TraceOp::Kind kind) {
  switch (kind) {
    case TraceOp::Kind::kFind:
      return "find";
    case TraceOp::Kind::kGetSuccessors:
      return "get-successors";
    case TraceOp::Kind::kGetASuccessor:
      return "get-a-successor";
    case TraceOp::Kind::kInsertNode:
      return "insert-node";
    case TraceOp::Kind::kInsertEdge:
      return "insert-edge";
    case TraceOp::Kind::kDeleteEdge:
      return "delete-edge";
    case TraceOp::Kind::kDeleteNode:
      return "delete-node";
    case TraceOp::Kind::kRoute:
      return "route";
  }
  return "unknown";
}

Result<std::vector<TraceOp>> ParseTrace(const std::string& text) {
  std::vector<TraceOp> ops;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank line
    auto fail = [&](const std::string& why) {
      return Status::Corruption("trace line " + std::to_string(lineno) +
                                ": " + why);
    };
    TraceOp op;
    auto read_ids = [&](size_t n) {
      for (size_t i = 0; i < n; ++i) {
        NodeId id;
        if (!(ls >> id)) return false;
        op.nodes.push_back(id);
      }
      return true;
    };
    if (verb == "find") {
      op.kind = TraceOp::Kind::kFind;
      if (!read_ids(1)) return fail("find needs <id>");
    } else if (verb == "get-successors") {
      op.kind = TraceOp::Kind::kGetSuccessors;
      if (!read_ids(1)) return fail("get-successors needs <id>");
    } else if (verb == "get-a-successor") {
      op.kind = TraceOp::Kind::kGetASuccessor;
      if (!read_ids(2)) return fail("get-a-successor needs <from> <to>");
    } else if (verb == "insert-node") {
      op.kind = TraceOp::Kind::kInsertNode;
      if (!read_ids(1) || !(ls >> op.x >> op.y)) {
        return fail("insert-node needs <id> <x> <y>");
      }
    } else if (verb == "insert-edge") {
      op.kind = TraceOp::Kind::kInsertEdge;
      if (!read_ids(2) || !(ls >> op.cost)) {
        return fail("insert-edge needs <u> <v> <cost>");
      }
    } else if (verb == "delete-edge") {
      op.kind = TraceOp::Kind::kDeleteEdge;
      if (!read_ids(2)) return fail("delete-edge needs <u> <v>");
    } else if (verb == "delete-node") {
      op.kind = TraceOp::Kind::kDeleteNode;
      if (!read_ids(1)) return fail("delete-node needs <id>");
    } else if (verb == "route") {
      op.kind = TraceOp::Kind::kRoute;
      NodeId id;
      while (ls >> id) op.nodes.push_back(id);
      if (op.nodes.size() < 2) return fail("route needs >= 2 nodes");
    } else {
      return fail("unknown operation '" + verb + "'");
    }
    std::string extra;
    if (ls >> extra) return fail("trailing tokens after operands");
    ops.push_back(std::move(op));
  }
  return ops;
}

Result<std::vector<TraceOp>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str());
}

std::string TraceReport::ToString() const {
  std::ostringstream out;
  out << "trace replay: " << total_ops << " operations, " << total_accesses
      << " data-page accesses\n";
  for (const auto& [kind, stats] : per_kind) {
    out << "  " << TraceOpKindName(kind) << ": " << stats.count << " ops";
    if (stats.failed > 0) out << " (" << stats.failed << " failed)";
    out << ", mean " << stats.MeanAccesses() << " accesses\n";
  }
  return out.str();
}

Result<TraceReport> ReplayTrace(AccessMethod* am,
                                const std::vector<TraceOp>& ops,
                                ReorgPolicy policy) {
  TraceReport report;
  std::map<TraceOp::Kind, TraceReport::PerKind> tally;
  for (const TraceOp& op : ops) {
    IoStats before = am->DataIoStats();
    Status st = Status::OK();
    switch (op.kind) {
      case TraceOp::Kind::kFind:
        st = am->Find(op.nodes[0]).status();
        break;
      case TraceOp::Kind::kGetSuccessors:
        st = am->GetSuccessors(op.nodes[0]).status();
        break;
      case TraceOp::Kind::kGetASuccessor:
        st = am->GetASuccessor(op.nodes[0], op.nodes[1]).status();
        break;
      case TraceOp::Kind::kInsertNode: {
        NodeRecord rec;
        rec.id = op.nodes[0];
        rec.x = op.x;
        rec.y = op.y;
        st = am->InsertNode(rec, policy);
        break;
      }
      case TraceOp::Kind::kInsertEdge:
        st = am->InsertEdge(op.nodes[0], op.nodes[1], op.cost, policy);
        break;
      case TraceOp::Kind::kDeleteEdge:
        st = am->DeleteEdge(op.nodes[0], op.nodes[1], policy);
        break;
      case TraceOp::Kind::kDeleteNode:
        st = am->DeleteNode(op.nodes[0], policy);
        break;
      case TraceOp::Kind::kRoute: {
        Route route;
        route.nodes = op.nodes;
        st = EvaluateRoute(am, route).status();
        break;
      }
    }
    // Storage faults abort the replay: the access method's file may be in
    // an undefined logical state, so tallying on as if the op had merely
    // missed a node would misreport. Logical failures (NotFound etc.) stay
    // non-fatal — traces routinely probe absent nodes.
    if (st.IsIOError() || st.IsCorruption() || st.IsShortRead() ||
        st.IsShortWrite()) {
      return st;
    }
    IoStats after = am->DataIoStats();
    TraceReport::PerKind& slot = tally[op.kind];
    ++slot.count;
    if (!st.ok()) ++slot.failed;
    slot.page_accesses += (after - before).Accesses();
    report.total_accesses += (after - before).Accesses();
    ++report.total_ops;
  }
  report.per_kind.assign(tally.begin(), tally.end());
  return report;
}

}  // namespace ccam
