#ifndef CCAM_QUERY_TRAVERSAL_H_
#define CCAM_QUERY_TRAVERSAL_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/access_method.h"

namespace ccam {

/// Traversal-recursion workloads over a paged network — the query family
/// the related work (Larson & Deshpande's traversal recursion; Agrawal &
/// Jagadish; the paper's reference [23]) evaluates access methods on.
/// Every node expansion goes through Get-successors(), so the I/O of these
/// computations is governed by the CRR exactly as Section 3 predicts.

/// Nodes reachable from `source` by directed edges, in BFS order
/// (including the source). `max_depth` < 0 means unbounded.
struct ReachabilityResult {
  std::vector<NodeId> nodes;
  uint64_t page_accesses = 0;
};
Result<ReachabilityResult> ReachableFrom(AccessMethod* am, NodeId source,
                                         int max_depth = -1);

/// Per-source reachability counts for a sample of sources — the classic
/// "partial transitive closure" benchmark. Returns the total page
/// accesses and the mean reachable-set size.
struct ClosureSample {
  double mean_reachable = 0.0;
  uint64_t page_accesses = 0;
};
Result<ClosureSample> SampleTransitiveClosure(
    AccessMethod* am, const std::vector<NodeId>& sources, int max_depth = -1);

/// Weakly-connected components of the stored network (successor and
/// predecessor links both traversed). Returns one representative node id
/// per component, with component sizes.
struct ComponentsResult {
  std::vector<std::pair<NodeId, size_t>> components;  // (repr, size)
  uint64_t page_accesses = 0;
};
Result<ComponentsResult> WeaklyConnectedComponents(AccessMethod* am);

}  // namespace ccam

#endif  // CCAM_QUERY_TRAVERSAL_H_
