#include "src/query/hierarchy.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/request_context.h"
#include "src/storage/hierarchy_record.h"

namespace ccam {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HeapEntry {
  double dist;
  NodeId node;
  bool operator>(const HeapEntry& o) const {
    // Deterministic pop order under cost ties.
    return dist != o.dist ? dist > o.dist : node > o.node;
  }
};

using MinQueue = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                     std::greater<HeapEntry>>;

/// Per-direction search state. CH searches settle few nodes (the upward
/// cones of src and dst), so hash maps with lazy-deletion queues suffice.
struct Direction {
  MinQueue open;
  std::unordered_map<NodeId, double> dist;
  /// dist-optimal predecessor arc: the neighbor the node was reached from
  /// and the shortcut's middle node (kInvalidNodeId for an original edge).
  struct ParentArc {
    NodeId from = kInvalidNodeId;
    NodeId via = kInvalidNodeId;
  };
  std::unordered_map<NodeId, ParentArc> parent;
  std::unordered_map<NodeId, bool> settled;
};

/// One query's view of the overlay: records fetched at most once, so the
/// charged page accesses reflect distinct record touches, not relaxations.
class RecordCache {
 public:
  explicit RecordCache(AccessMethod* am) : am_(am) {}

  Result<const HierarchyNodeRecord*> Get(NodeId id) {
    auto it = cache_.find(id);
    if (it == cache_.end()) {
      HierarchyNodeRecord rec;
      CCAM_ASSIGN_OR_RETURN(rec, am_->HierarchyNode(id));
      it = cache_.emplace(id, std::move(rec)).first;
    }
    return &it->second;
  }

 private:
  AccessMethod* am_;
  std::unordered_map<NodeId, HierarchyNodeRecord> cache_;
};

/// Expands one shortcut path segment into the original-edge node sequence.
/// Arcs always connect through a *lower*-ranked middle node, so the
/// recursion (made explicit to survive deep hierarchies) terminates.
/// Emits the nodes strictly after `u`, up to and including `v`.
Status UnpackArc(RecordCache* cache, NodeId u, NodeId v, NodeId via,
                 std::vector<NodeId>* out) {
  struct Seg {
    NodeId u, v, via;
  };
  std::vector<Seg> stack{{u, v, via}};
  while (!stack.empty()) {
    Seg seg = stack.back();
    stack.pop_back();
    if (seg.via == kInvalidNodeId) {
      out->push_back(seg.v);
      continue;
    }
    // The shortcut u->v bypasses `via`: its halves are the incoming arc
    // u->via and the outgoing arc via->v, both stored on via's record.
    const HierarchyNodeRecord* mid;
    CCAM_ASSIGN_OR_RETURN(mid, cache->Get(seg.via));
    HierarchyArc first, second;
    CCAM_ASSIGN_OR_RETURN(first, mid->DownArcFrom(seg.u));
    CCAM_ASSIGN_OR_RETURN(second, mid->UpArcTo(seg.v));
    // LIFO: push the right half first so the left half unpacks first.
    stack.push_back({seg.via, seg.v, second.via});
    stack.push_back({seg.u, seg.via, first.via});
  }
  return Status::OK();
}

}  // namespace

Result<SearchResult> ShortestPathCH(AccessMethod* am, NodeId src,
                                    NodeId dst) {
  if (!am->HasHierarchy()) {
    return Status::NotSupported("access method has no hierarchy overlay");
  }
  SearchResult result;
  QuerySpan span(am->metrics(), "query.hierarchy");
  MetricCounter* m_settled = nullptr;
  MetricCounter* m_relaxed = nullptr;
  if (MetricsRegistry* reg = am->metrics(); reg != nullptr) {
    m_settled = reg->GetCounter("query.hierarchy.settled");
    m_relaxed = reg->GetCounter("query.hierarchy.relaxed");
  }
  uint64_t relaxed = 0;
  IoStats data_before = am->DataIoStats();
  IoStats hier_before = am->HierarchyIoStats();
  RecordCache cache(am);

  // Validates both endpoints exist (and warms the cache with them).
  CCAM_RETURN_NOT_OK(cache.Get(src).status());
  CCAM_RETURN_NOT_OK(cache.Get(dst).status());

  auto finish = [&](Result<SearchResult> r) {
    if (m_settled != nullptr && result.nodes_expanded > 0) {
      m_settled->Inc(result.nodes_expanded);
    }
    if (m_relaxed != nullptr && relaxed > 0) m_relaxed->Inc(relaxed);
    if (r.ok()) {
      r->page_accesses = (am->DataIoStats() - data_before).Accesses() +
                         (am->HierarchyIoStats() - hier_before).Accesses();
    }
    return r;
  };

  if (src == dst) {
    result.path = {src};
    return finish(result);
  }

  Direction fwd, bwd;
  fwd.dist[src] = 0.0;
  fwd.open.push({0.0, src});
  bwd.dist[dst] = 0.0;
  bwd.open.push({0.0, dst});

  double best = kInf;
  NodeId meet = kInvalidNodeId;

  // Alternate directions; a direction stops once its queue minimum cannot
  // improve the best meeting found so far, and the search ends when both
  // have stopped (the standard CH termination — NOT Dijkstra's, because
  // the meeting node need not be settled by either side).
  bool forward_turn = true;
  RequestContext* ctx = am->request_context();
  while (!fwd.open.empty() || !bwd.open.empty()) {
    if (ctx != nullptr) {
      Status lifecycle = ctx->Check();
      if (!lifecycle.ok()) return finish(std::move(lifecycle));
    }
    Direction* dir = forward_turn ? &fwd : &bwd;
    Direction* other = forward_turn ? &bwd : &fwd;
    if (dir->open.empty() || dir->open.top().dist >= best) {
      if (other->open.empty() || other->open.top().dist >= best) break;
      forward_turn = !forward_turn;
      continue;
    }
    HeapEntry top = dir->open.top();
    dir->open.pop();
    if (dir->settled[top.node]) continue;  // lazy deletion
    dir->settled[top.node] = true;
    ++result.nodes_expanded;

    auto o = other->dist.find(top.node);
    if (o != other->dist.end() && top.dist + o->second < best) {
      best = top.dist + o->second;
      meet = top.node;
    }

    const HierarchyNodeRecord* rec;
    {
      auto r = cache.Get(top.node);
      if (!r.ok()) return finish(r.status());
      rec = *r;
    }
    const std::vector<HierarchyArc>& arcs =
        forward_turn ? rec->up : rec->down;
    for (const HierarchyArc& arc : arcs) {
      ++relaxed;
      double nd = top.dist + arc.cost;
      auto it = dir->dist.find(arc.node);
      if (it == dir->dist.end() || nd < it->second) {
        dir->dist[arc.node] = nd;
        dir->parent[arc.node] = {top.node, arc.via};
        dir->open.push({nd, arc.node});
      }
    }
    forward_turn = !forward_turn;
  }

  if (meet == kInvalidNodeId) return finish(result);  // unreachable

  // Walk the parent chains off the meeting node, then unpack each shortcut
  // into original edges so the returned path matches Dijkstra's exactly.
  std::vector<std::pair<NodeId, NodeId>> up_arcs;  // (from, via), src..meet
  for (NodeId cur = meet; cur != src;) {
    const Direction::ParentArc& pa = fwd.parent.at(cur);
    up_arcs.emplace_back(cur, pa.via);
    cur = pa.from;
  }
  std::reverse(up_arcs.begin(), up_arcs.end());

  result.cost = best;
  result.path.push_back(src);
  NodeId prev = src;
  for (const auto& [node, via] : up_arcs) {
    Status s = UnpackArc(&cache, prev, node, via, &result.path);
    if (!s.ok()) return finish(std::move(s));
    prev = node;
  }
  for (NodeId cur = meet; cur != dst;) {
    const Direction::ParentArc& pa = bwd.parent.at(cur);
    // Backward arcs run cur -> pa.from in the original direction.
    Status s = UnpackArc(&cache, cur, pa.from, pa.via, &result.path);
    if (!s.ok()) return finish(std::move(s));
    cur = pa.from;
  }
  return finish(result);
}

std::vector<Result<SearchResult>> ShortestPathCHBatch(
    AccessMethod* am, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  QuerySpan span(am->metrics(), "query.hierarchy_batch");
  std::vector<Result<SearchResult>> results;
  results.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    results.push_back(ShortestPathCH(am, src, dst));
  }
  return results;
}

}  // namespace ccam
