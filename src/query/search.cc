#include "src/query/search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/common/metrics.h"

namespace ccam {

namespace {

struct QueueEntry {
  double priority;  // g (Dijkstra) or g + h (A*)
  double g;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return priority > o.priority; }
};

using MinQueue = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                     std::greater<QueueEntry>>;

std::vector<NodeId> ReconstructPath(
    const std::unordered_map<NodeId, NodeId>& parent, NodeId src,
    NodeId dst) {
  std::vector<NodeId> path{dst};
  NodeId cur = dst;
  while (cur != src) {
    auto it = parent.find(cur);
    if (it == parent.end()) return {};
    cur = it->second;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Shared best-first search; `heuristic_weight` < 0 disables the heuristic
/// (plain Dijkstra).
Result<SearchResult> BestFirst(AccessMethod* am, NodeId src, NodeId dst,
                               double heuristic_weight) {
  SearchResult result;
  QuerySpan span(am->metrics(), "query.search");
  IoStats before = am->DataIoStats();

  NodeRecord dst_rec;
  CCAM_ASSIGN_OR_RETURN(dst_rec, am->Find(dst));
  const double tx = dst_rec.x, ty = dst_rec.y;
  auto heuristic = [&](const NodeRecord& rec) {
    if (heuristic_weight < 0.0) return 0.0;
    return heuristic_weight * std::hypot(rec.x - tx, rec.y - ty);
  };

  std::unordered_map<NodeId, double> best_g;
  std::unordered_map<NodeId, NodeId> parent;
  std::unordered_set<NodeId> closed;
  MinQueue open;

  NodeRecord src_rec;
  CCAM_ASSIGN_OR_RETURN(src_rec, am->Find(src));
  best_g[src] = 0.0;
  open.push({heuristic(src_rec), 0.0, src});

  while (!open.empty()) {
    QueueEntry top = open.top();
    open.pop();
    if (closed.count(top.node)) continue;
    closed.insert(top.node);
    ++result.nodes_expanded;
    if (top.node == dst) {
      result.cost = top.g;
      result.path = ReconstructPath(parent, src, dst);
      break;
    }
    std::vector<NodeRecord> successors;
    CCAM_ASSIGN_OR_RETURN(successors, am->GetSuccessors(top.node));
    // Costs come from the expanded node's successor-list.
    NodeRecord expanded;
    CCAM_ASSIGN_OR_RETURN(expanded, am->Find(top.node));  // buffered
    for (const NodeRecord& succ : successors) {
      if (closed.count(succ.id)) continue;
      auto cost = expanded.SuccessorCost(succ.id);
      if (!cost.ok()) continue;
      double g = top.g + *cost;
      auto it = best_g.find(succ.id);
      if (it == best_g.end() || g < it->second) {
        best_g[succ.id] = g;
        parent[succ.id] = top.node;
        open.push({g + heuristic(succ), g, succ.id});
      }
    }
  }

  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

}  // namespace

Result<SearchResult> ShortestPathDijkstra(AccessMethod* am, NodeId src,
                                          NodeId dst) {
  return BestFirst(am, src, dst, -1.0);
}

Result<SearchResult> ShortestPathAStar(AccessMethod* am, NodeId src,
                                       NodeId dst, double heuristic_weight) {
  return BestFirst(am, src, dst, heuristic_weight);
}

Result<MultiSourceResult> MultiSourceDistances(
    AccessMethod* am, const std::vector<NodeId>& sources) {
  MultiSourceResult result;
  QuerySpan span(am->metrics(), "query.search");
  IoStats before = am->DataIoStats();

  std::unordered_map<NodeId, double> best;
  std::unordered_set<NodeId> closed;
  MinQueue open;
  for (NodeId s : sources) {
    best[s] = 0.0;
    open.push({0.0, 0.0, s});
  }
  while (!open.empty()) {
    QueueEntry top = open.top();
    open.pop();
    if (closed.count(top.node)) continue;
    closed.insert(top.node);
    result.distances.emplace_back(top.node, top.g);
    std::vector<NodeRecord> successors;
    CCAM_ASSIGN_OR_RETURN(successors, am->GetSuccessors(top.node));
    NodeRecord expanded;
    CCAM_ASSIGN_OR_RETURN(expanded, am->Find(top.node));
    for (const NodeRecord& succ : successors) {
      if (closed.count(succ.id)) continue;
      auto cost = expanded.SuccessorCost(succ.id);
      if (!cost.ok()) continue;
      double g = top.g + *cost;
      auto it = best.find(succ.id);
      if (it == best.end() || g < it->second) {
        best[succ.id] = g;
        open.push({g, g, succ.id});
      }
    }
  }

  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

}  // namespace ccam
