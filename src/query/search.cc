#include "src/query/search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/metrics.h"
#include "src/common/request_context.h"

namespace ccam {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Search working set: one dense slot per reached node (g, parent, closed
/// flag) indexed by an open-addressing table, plus a 4-ary heap with
/// decrease-key over the slots. Replaces the former lazy-deletion
/// std::priority_queue and its three per-node unordered_maps: one hash
/// probe per touched node instead of three, no duplicate heap entries, and
/// a shallower, cache-friendlier heap (4-ary beats binary here because
/// sift-down dominates and reads four children from one cache line).
/// Ties on priority settle by ascending node id, so the expansion order —
/// and hence the page-access count — is a pure function of the graph.
class SearchCore {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    NodeId id = kInvalidNodeId;
    uint32_t parent = kNil;    // slot index of the best predecessor
    double g = kInf;
    double priority = kInf;    // g (Dijkstra) or g + h (A*)
    uint32_t heap_pos = kNil;  // kNil when not in the open heap
    bool closed = false;
  };

  /// `expected` sizes the table for the whole node set up front (the
  /// paper-scale searches reach most of it), so searches never rehash.
  explicit SearchCore(size_t expected) {
    size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    index_.assign(cap, kNil);
    mask_ = cap - 1;
    slots_.reserve(expected);
    heap_.reserve(expected);
  }

  /// Finds or creates the slot of `id`.
  uint32_t Intern(NodeId id) {
    size_t h = Hash(id);
    while (true) {
      uint32_t s = index_[h];
      if (s == kNil) {
        if ((slots_.size() + 1) * 10 > index_.size() * 7) {
          Grow();
          return Intern(id);
        }
        uint32_t idx = static_cast<uint32_t>(slots_.size());
        slots_.push_back(Slot{});
        slots_.back().id = id;
        index_[h] = idx;
        return idx;
      }
      if (slots_[s].id == id) return s;
      h = (h + 1) & mask_;
    }
  }

  Slot& slot(uint32_t s) { return slots_[s]; }

  bool HeapEmpty() const { return heap_.empty(); }

  /// Inserts `s` or restores heap order after its priority decreased.
  void HeapPushOrDecrease(uint32_t s) {
    if (slots_[s].heap_pos == kNil) {
      slots_[s].heap_pos = static_cast<uint32_t>(heap_.size());
      heap_.push_back(s);
    }
    SiftUp(slots_[s].heap_pos);
  }

  uint32_t HeapPop() {
    uint32_t top = heap_[0];
    slots_[top].heap_pos = kNil;
    uint32_t last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      slots_[last].heap_pos = 0;
      SiftDown(0);
    }
    return top;
  }

  /// Parent-chain walk from the slot of `dst` back to a root slot.
  std::vector<NodeId> ReconstructPath(uint32_t dst_slot) const {
    std::vector<NodeId> path;
    for (uint32_t s = dst_slot; s != kNil; s = slots_[s].parent) {
      path.push_back(slots_[s].id);
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

 private:
  bool Less(uint32_t a, uint32_t b) const {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    return x.priority != y.priority ? x.priority < y.priority : x.id < y.id;
  }

  void SiftUp(size_t pos) {
    uint32_t s = heap_[pos];
    while (pos > 0) {
      size_t up = (pos - 1) / 4;
      if (!Less(s, heap_[up])) break;
      heap_[pos] = heap_[up];
      slots_[heap_[pos]].heap_pos = static_cast<uint32_t>(pos);
      pos = up;
    }
    heap_[pos] = s;
    slots_[s].heap_pos = static_cast<uint32_t>(pos);
  }

  void SiftDown(size_t pos) {
    uint32_t s = heap_[pos];
    size_t n = heap_.size();
    while (true) {
      size_t first = pos * 4 + 1;
      if (first >= n) break;
      size_t best = first;
      size_t last = std::min(first + 4, n);
      for (size_t c = first + 1; c < last; ++c) {
        if (Less(heap_[c], heap_[best])) best = c;
      }
      if (!Less(heap_[best], s)) break;
      heap_[pos] = heap_[best];
      slots_[heap_[pos]].heap_pos = static_cast<uint32_t>(pos);
      pos = best;
    }
    heap_[pos] = s;
    slots_[s].heap_pos = static_cast<uint32_t>(pos);
  }

  size_t Hash(NodeId id) const {
    uint64_t x = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 32) & mask_;
  }

  void Grow() {
    std::vector<uint32_t> old = std::move(index_);
    index_.assign(old.size() * 2, kNil);
    mask_ = index_.size() - 1;
    for (uint32_t s = 0; s < slots_.size(); ++s) {
      size_t h = Hash(slots_[s].id);
      while (index_[h] != kNil) h = (h + 1) & mask_;
      index_[h] = s;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> index_;  // open addressing, linear probing
  std::vector<uint32_t> heap_;   // 4-ary min-heap of slot indices
  size_t mask_ = 0;
};

/// Resolves the settled/relaxed counters ("query.search.settled" /
/// "query.search.relaxed") once per search; null registry = both null and
/// every site is one pointer test (the zero-overhead contract).
struct SearchCounters {
  explicit SearchCounters(MetricsRegistry* reg) {
    if (reg != nullptr) {
      settled = reg->GetCounter("query.search.settled");
      relaxed = reg->GetCounter("query.search.relaxed");
    }
  }
  ~SearchCounters() {
    if (settled != nullptr && n_settled > 0) settled->Inc(n_settled);
    if (relaxed != nullptr && n_relaxed > 0) relaxed->Inc(n_relaxed);
  }
  MetricCounter* settled = nullptr;
  MetricCounter* relaxed = nullptr;
  uint64_t n_settled = 0;
  uint64_t n_relaxed = 0;
};

/// Shared best-first search; `heuristic_weight` < 0 disables the heuristic
/// (plain Dijkstra).
Result<SearchResult> BestFirst(AccessMethod* am, NodeId src, NodeId dst,
                               double heuristic_weight) {
  SearchResult result;
  QuerySpan span(am->metrics(), "query.search");
  SearchCounters counters(am->metrics());
  IoStats before = am->DataIoStats();

  NodeRecord dst_rec;
  CCAM_ASSIGN_OR_RETURN(dst_rec, am->Find(dst));
  const double tx = dst_rec.x, ty = dst_rec.y;
  auto heuristic = [&](const NodeRecord& rec) {
    if (heuristic_weight < 0.0) return 0.0;
    return heuristic_weight * std::hypot(rec.x - tx, rec.y - ty);
  };

  SearchCore core(am->NumLiveNodes());

  NodeRecord src_rec;
  CCAM_ASSIGN_OR_RETURN(src_rec, am->Find(src));
  {
    uint32_t s = core.Intern(src);
    core.slot(s).g = 0.0;
    core.slot(s).priority = heuristic(src_rec);
    core.HeapPushOrDecrease(s);
  }

  RequestContext* ctx = am->request_context();
  while (!core.HeapEmpty()) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    uint32_t cur = core.HeapPop();
    core.slot(cur).closed = true;
    NodeId node = core.slot(cur).id;
    double g = core.slot(cur).g;
    ++result.nodes_expanded;
    ++counters.n_settled;
    if (node == dst) {
      result.cost = g;
      result.path = core.ReconstructPath(cur);
      break;
    }
    std::vector<NodeRecord> successors;
    CCAM_ASSIGN_OR_RETURN(successors, am->GetSuccessors(node));
    // Costs come from the expanded node's successor-list.
    NodeRecord expanded;
    CCAM_ASSIGN_OR_RETURN(expanded, am->Find(node));  // buffered
    for (const NodeRecord& succ : successors) {
      uint32_t t = core.Intern(succ.id);
      if (core.slot(t).closed) continue;
      auto cost = expanded.SuccessorCost(succ.id);
      if (!cost.ok()) continue;
      ++counters.n_relaxed;
      double ng = g + *cost;
      SearchCore::Slot& ts = core.slot(t);
      if (ng < ts.g) {
        ts.g = ng;
        ts.parent = cur;
        ts.priority = ng + heuristic(succ);
        core.HeapPushOrDecrease(t);
      }
    }
  }

  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

}  // namespace

Result<SearchResult> ShortestPathDijkstra(AccessMethod* am, NodeId src,
                                          NodeId dst) {
  return BestFirst(am, src, dst, -1.0);
}

Result<SearchResult> ShortestPathAStar(AccessMethod* am, NodeId src,
                                       NodeId dst, double heuristic_weight) {
  return BestFirst(am, src, dst, heuristic_weight);
}

std::vector<Result<SearchResult>> ShortestPathAStarBatch(
    AccessMethod* am, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    double heuristic_weight) {
  QuerySpan span(am->metrics(), "query.astar_batch");
  std::vector<Result<SearchResult>> results;
  results.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    results.push_back(BestFirst(am, src, dst, heuristic_weight));
  }
  return results;
}

Result<MultiSourceResult> MultiSourceDistances(
    AccessMethod* am, const std::vector<NodeId>& sources) {
  MultiSourceResult result;
  QuerySpan span(am->metrics(), "query.search");
  SearchCounters counters(am->metrics());
  IoStats before = am->DataIoStats();

  SearchCore core(am->NumLiveNodes());
  for (NodeId s : sources) {
    uint32_t idx = core.Intern(s);
    if (core.slot(idx).g == 0.0) continue;  // duplicate source
    core.slot(idx).g = 0.0;
    core.slot(idx).priority = 0.0;
    core.HeapPushOrDecrease(idx);
  }
  RequestContext* ctx = am->request_context();
  while (!core.HeapEmpty()) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    uint32_t cur = core.HeapPop();
    core.slot(cur).closed = true;
    NodeId node = core.slot(cur).id;
    double g = core.slot(cur).g;
    ++counters.n_settled;
    result.distances.emplace_back(node, g);
    std::vector<NodeRecord> successors;
    CCAM_ASSIGN_OR_RETURN(successors, am->GetSuccessors(node));
    NodeRecord expanded;
    CCAM_ASSIGN_OR_RETURN(expanded, am->Find(node));
    for (const NodeRecord& succ : successors) {
      uint32_t t = core.Intern(succ.id);
      if (core.slot(t).closed) continue;
      auto cost = expanded.SuccessorCost(succ.id);
      if (!cost.ok()) continue;
      ++counters.n_relaxed;
      double ng = g + *cost;
      SearchCore::Slot& ts = core.slot(t);
      if (ng < ts.g) {
        ts.g = ng;
        ts.parent = cur;
        ts.priority = ng;
        core.HeapPushOrDecrease(t);
      }
    }
  }

  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

}  // namespace ccam
