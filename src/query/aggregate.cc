#include "src/query/aggregate.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "src/common/metrics.h"
#include "src/common/request_context.h"
#include "src/query/search.h"

namespace ccam {

Result<RouteUnitAggregate> AggregateRouteUnit(AccessMethod* am,
                                              const RouteUnit& unit) {
  RouteUnitAggregate agg;
  QuerySpan span(am->metrics(), "query.aggregate");
  IoStats before = am->DataIoStats();

  // Retrieve each distinct member node once; edge costs come from the
  // source node's successor-list. Buffered pages make co-clustered
  // route-units cheap.
  std::set<NodeId> nodes;
  for (const auto& [u, v] : unit.edges) {
    nodes.insert(u);
    nodes.insert(v);
  }
  std::unordered_map<NodeId, NodeRecord> records;
  RequestContext* ctx = am->request_context();
  for (NodeId id : nodes) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    NodeRecord rec;
    CCAM_ASSIGN_OR_RETURN(rec, am->Find(id));
    records.emplace(id, std::move(rec));
  }
  agg.num_nodes = nodes.size();
  agg.min_edge_cost = std::numeric_limits<double>::infinity();
  agg.max_edge_cost = -std::numeric_limits<double>::infinity();
  for (const auto& [u, v] : unit.edges) {
    auto cost = records.at(u).SuccessorCost(v);
    if (!cost.ok()) return cost.status();
    agg.total_edge_cost += *cost;
    agg.min_edge_cost = std::min(agg.min_edge_cost, double{*cost});
    agg.max_edge_cost = std::max(agg.max_edge_cost, double{*cost});
    ++agg.num_edges;
  }
  if (agg.num_edges == 0) {
    agg.min_edge_cost = 0.0;
    agg.max_edge_cost = 0.0;
  }

  IoStats after = am->DataIoStats();
  agg.page_accesses = (after - before).Accesses();
  return agg;
}

std::vector<Result<RouteUnitAggregate>> AggregateRouteUnitBatch(
    AccessMethod* am, const std::vector<const RouteUnit*>& units) {
  QuerySpan span(am->metrics(), "query.aggregate_batch");
  std::vector<Result<RouteUnitAggregate>> results;
  results.reserve(units.size());
  for (const RouteUnit* unit : units) {
    results.push_back(AggregateRouteUnit(am, *unit));
  }
  return results;
}

Result<TourEvalResult> EvaluateTour(AccessMethod* am, const Route& tour) {
  TourEvalResult result;
  if (tour.nodes.size() < 2) {
    return Status::InvalidArgument("a tour needs at least two nodes");
  }
  // Close the loop if the route does not already return to its origin.
  Route closed = tour;
  if (closed.nodes.front() != closed.nodes.back()) {
    closed.nodes.push_back(closed.nodes.front());
  }
  QuerySpan span(am->metrics(), "query.aggregate");
  IoStats before = am->DataIoStats();
  NodeRecord current;
  CCAM_ASSIGN_OR_RETURN(current, am->Find(closed.nodes[0]));
  RequestContext* ctx = am->request_context();
  for (size_t i = 1; i < closed.nodes.size(); ++i) {
    if (ctx != nullptr) CCAM_RETURN_NOT_OK(ctx->Check());
    NodeId next = closed.nodes[i];
    auto cost = current.SuccessorCost(next);
    if (!cost.ok()) return cost.status();
    result.total_cost += *cost;
    ++result.num_edges;
    CCAM_ASSIGN_OR_RETURN(current, am->GetASuccessor(current.id, next));
  }
  IoStats after = am->DataIoStats();
  result.page_accesses = (after - before).Accesses();
  return result;
}

Result<LocationAllocationResult> EvaluateLocationAllocation(
    AccessMethod* am, const std::vector<NodeId>& facilities,
    const std::vector<NodeId>& demands) {
  LocationAllocationResult result;
  if (facilities.empty()) {
    return Status::InvalidArgument("no facilities");
  }
  MultiSourceResult distances;
  CCAM_ASSIGN_OR_RETURN(distances, MultiSourceDistances(am, facilities));
  std::unordered_map<NodeId, double> dist;
  for (const auto& [node, d] : distances.distances) dist[node] = d;
  for (NodeId demand : demands) {
    auto it = dist.find(demand);
    if (it == dist.end()) {
      ++result.num_unserved;
      continue;
    }
    ++result.num_served;
    result.total_cost += it->second;
    result.max_cost = std::max(result.max_cost, it->second);
  }
  result.page_accesses = distances.page_accesses;
  return result;
}

}  // namespace ccam
