#ifndef CCAM_QUERY_SPATIAL_H_
#define CCAM_QUERY_SPATIAL_H_

#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/core/access_method.h"
#include "src/index/bptree.h"
#include "src/index/rtree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"

namespace ccam {

/// Spatial secondary indexes over a network access method — the paper's
/// Section 2.1: "A B+ tree with Z-ordering of the x, y coordinates is used
/// to order the secondary index. It can support point and range queries on
/// spatial databases. Other access methods such as R-tree ... can
/// alternatively be created on top of the data file as secondary indices
/// in CCAM to suit the application."
///
/// The engine maintains both flavors over the same data file:
///  * a paged B+ tree keyed by the Z-order code of (x, y), scanned with
///    BIGMIN skipping for window queries, and
///  * an in-memory Guttman R-tree, used for window and k-nearest queries.
///
/// Per the paper's cost model, index I/O is tracked on its own simulated
/// disk and never pollutes the data-page counters; the interesting number
/// for a window query is how many *data* pages the result-record fetches
/// touch, which depends on the access method's clustering.
class SpatialQueryEngine {
 public:
  /// Which index answers the query.
  enum class IndexKind { kZOrderBTree, kRTree };

  /// Builds both indexes by scanning every record of `am` (the build scan
  /// does not count toward later query I/O). The engine holds a pointer to
  /// `am`; the caller must keep it alive and must rebuild the engine after
  /// inserting or deleting nodes (or use Insert/Remove below).
  static Result<std::unique_ptr<SpatialQueryEngine>> Build(AccessMethod* am);

  /// Keeps the indexes in sync with a node insert / delete.
  Status InsertNode(NodeId id, double x, double y);
  Status RemoveNode(NodeId id, double x, double y);

  struct WindowResult {
    std::vector<NodeRecord> records;
    uint64_t data_page_accesses = 0;
    /// Z-order scan diagnostics: leaf entries inspected vs. BIGMIN jumps
    /// taken (kZOrderBTree only).
    uint64_t entries_scanned = 0;
    uint64_t bigmin_jumps = 0;
  };

  /// All nodes with xmin <= x <= xmax, ymin <= y <= ymax; fetches their
  /// records through the access method (counted as data-page I/O).
  Result<WindowResult> WindowQuery(double xmin, double ymin, double xmax,
                                   double ymax,
                                   IndexKind kind = IndexKind::kZOrderBTree);

  struct NearestResult {
    std::vector<NodeRecord> records;  // nearest first
    uint64_t data_page_accesses = 0;
  };

  /// The k nodes nearest to (x, y) by Euclidean distance (R-tree).
  Result<NearestResult> NearestNeighbors(double x, double y, size_t k);

  size_t NumIndexedNodes() const { return rtree_.NumEntries(); }
  IoStats ZIndexIoStats() const { return zdisk_->stats(); }

 private:
  SpatialQueryEngine();

  uint64_t CodeOf(double x, double y) const;

  AccessMethod* am_ = nullptr;
  // Z-order B+ tree on its own simulated disk (index pages are "buffered"
  // per the cost model, but their I/O remains observable).
  std::unique_ptr<DiskManager> zdisk_;
  std::unique_ptr<BufferPool> zpool_;
  std::unique_ptr<BPlusTree> ztree_;
  RTree rtree_;
  double min_coord_ = 0.0;
  double max_coord_ = 0.0;
};

}  // namespace ccam

#endif  // CCAM_QUERY_SPATIAL_H_
