#include "src/core/hierarchy_overlay.h"

#include <algorithm>
#include <fstream>
#include <queue>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/partition/nested_dissection.h"
#include "src/storage/page.h"

namespace ccam {

namespace {

/// One arc of the in-memory contraction core: the other endpoint (dense
/// index), the current best cost, and the shortcut's middle node (or
/// kInvalidNodeId for an original edge).
struct CoreArc {
  uint32_t to;
  double cost;
  NodeId via;
};

/// Witness searches settle at most this many nodes. Exceeding the cap is
/// conservative: the contraction assumes no witness and keeps the
/// shortcut — correct, just a few extra arcs.
constexpr size_t kWitnessSettleLimit = 128;

/// Overlay pages double until the widest record fits; wider than this is a
/// structural bug, not a tuning problem.
constexpr size_t kMaxOverlayPageSize = size_t{1} << 20;

/// Bounded Dijkstra from `source` in the current core, never entering
/// `excluded` (the node being contracted). Fills `settled` with the final
/// distances of settled nodes. Deterministic: the heap orders by
/// (distance, dense index), so equal-distance settle order — which matters
/// under the settle cap — is a pure function of the core graph.
void WitnessSearch(const std::vector<std::vector<CoreArc>>& out,
                   uint32_t source, uint32_t excluded, double bound,
                   std::unordered_map<uint32_t, double>* settled) {
  using Entry = std::pair<double, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> open;
  std::unordered_map<uint32_t, double> dist;
  dist.emplace(source, 0.0);
  open.push({0.0, source});
  while (!open.empty()) {
    auto [d, u] = open.top();
    open.pop();
    auto du = dist.find(u);
    if (du == dist.end() || d > du->second) continue;  // stale entry
    if (d > bound) break;
    settled->emplace(u, d);
    if (settled->size() >= kWitnessSettleLimit) break;
    for (const CoreArc& arc : out[u]) {
      if (arc.to == excluded) continue;
      const double nd = d + arc.cost;
      if (nd > bound) continue;
      auto it = dist.find(arc.to);
      if (it == dist.end()) {
        dist.emplace(arc.to, nd);
        open.push({nd, arc.to});
      } else if (nd < it->second) {
        it->second = nd;
        open.push({nd, arc.to});
      }
    }
  }
}

/// Finds the arc to `to` in `arcs`, or nullptr.
CoreArc* FindArc(std::vector<CoreArc>* arcs, uint32_t to) {
  for (CoreArc& arc : *arcs) {
    if (arc.to == to) return &arc;
  }
  return nullptr;
}

void EraseArc(std::vector<CoreArc>* arcs, uint32_t to) {
  for (size_t i = 0; i < arcs->size(); ++i) {
    if ((*arcs)[i].to == to) {
      arcs->erase(arcs->begin() + i);
      return;
    }
  }
}

std::vector<HierarchyArc> ToRecordArcs(const std::vector<CoreArc>& arcs,
                                       const std::vector<NodeId>& ids) {
  std::vector<HierarchyArc> result;
  result.reserve(arcs.size());
  for (const CoreArc& arc : arcs) {
    result.push_back({ids[arc.to], arc.cost, arc.via});
  }
  std::sort(result.begin(), result.end(),
            [](const HierarchyArc& a, const HierarchyArc& b) {
              return a.node < b.node;
            });
  return result;
}

/// Contracts `network` in nested-dissection order. Produces one record per
/// node (indexed by rank) and the shortcut count. Witness searches of one
/// contraction step are independent read-only probes of the core, so they
/// run on the pool; shortcut application stays sequential — the result is
/// bit-identical for any thread count.
Status Contract(const Network& network, const AccessMethodOptions& options,
                std::vector<HierarchyNodeRecord>* records,
                size_t* num_shortcuts) {
  const std::vector<NodeId> ids = network.NodeIds();
  const size_t n = ids.size();
  std::unordered_map<NodeId, uint32_t> dense;
  dense.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) dense.emplace(ids[i], static_cast<uint32_t>(i));

  NestedDissectionOptions nd;
  nd.algorithm = options.partitioner;
  nd.num_threads = options.num_threads;
  nd.seed = options.seed;
  std::vector<NodeId> order;
  CCAM_ASSIGN_OR_RETURN(order, NestedDissectionOrder(network, ids, nd));
  if (order.size() != n) {
    return Status::InvalidArgument("nested dissection order lost nodes");
  }

  // The mutable core: per-node out/in arc lists over dense indices,
  // deduplicated keeping the cheapest parallel edge.
  std::vector<std::vector<CoreArc>> out(n), in(n);
  for (size_t i = 0; i < n; ++i) {
    for (const AdjEntry& e : network.node(ids[i]).succ) {
      auto it = dense.find(e.node);
      if (it == dense.end() || it->second == i) continue;
      out[i].push_back(
          {it->second, static_cast<double>(e.cost), kInvalidNodeId});
    }
    std::sort(out[i].begin(), out[i].end(),
              [](const CoreArc& a, const CoreArc& b) {
                return a.to != b.to ? a.to < b.to : a.cost < b.cost;
              });
    out[i].erase(std::unique(out[i].begin(), out[i].end(),
                             [](const CoreArc& a, const CoreArc& b) {
                               return a.to == b.to;
                             }),
                 out[i].end());
  }
  for (size_t i = 0; i < n; ++i) {
    for (const CoreArc& arc : out[i]) {
      in[arc.to].push_back({static_cast<uint32_t>(i), arc.cost, arc.via});
    }
  }

  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && n >= 256) pool = std::make_unique<ThreadPool>(threads);

  records->assign(n, HierarchyNodeRecord{});
  *num_shortcuts = 0;
  std::vector<std::unordered_map<uint32_t, double>> witness;
  for (size_t pos = 0; pos < n; ++pos) {
    const uint32_t v = dense.find(order[pos])->second;
    const std::vector<CoreArc> preds = in[v];
    const std::vector<CoreArc> succs = out[v];

    HierarchyNodeRecord& rec = (*records)[pos];
    rec.id = order[pos];
    rec.rank = static_cast<uint32_t>(pos);
    rec.up = ToRecordArcs(succs, ids);
    rec.down = ToRecordArcs(preds, ids);
    if (rec.up.size() > UINT16_MAX || rec.down.size() > UINT16_MAX) {
      return Status::InvalidArgument("hierarchy node degree exceeds record format");
    }

    double max_succ_cost = 0.0;
    for (const CoreArc& w : succs) max_succ_cost = std::max(max_succ_cost, w.cost);

    // One witness search per predecessor, pruning shortcuts that a path
    // avoiding v already covers. Read-only on the core, so they run
    // concurrently into per-predecessor slots.
    witness.assign(preds.size(), {});
    if (pool && preds.size() >= 2 && !succs.empty()) {
      for (size_t i = 0; i < preds.size(); ++i) {
        pool->Submit([&, i] {
          WitnessSearch(out, preds[i].to, v, preds[i].cost + max_succ_cost,
                        &witness[i]);
        });
      }
      pool->WaitIdle();
    } else if (!succs.empty()) {
      for (size_t i = 0; i < preds.size(); ++i) {
        WitnessSearch(out, preds[i].to, v, preds[i].cost + max_succ_cost,
                      &witness[i]);
      }
    }

    for (size_t i = 0; i < preds.size(); ++i) {
      const uint32_t su = preds[i].to;
      for (const CoreArc& w : succs) {
        if (w.to == su) continue;
        const double need = preds[i].cost + w.cost;
        auto hit = witness[i].find(w.to);
        if (hit != witness[i].end() && hit->second <= need) continue;
        if (CoreArc* existing = FindArc(&out[su], w.to)) {
          if (need < existing->cost) {
            existing->cost = need;
            existing->via = order[pos];
            CoreArc* mirror = FindArc(&in[w.to], su);
            mirror->cost = need;
            mirror->via = order[pos];
          }
        } else {
          out[su].push_back({w.to, need, order[pos]});
          in[w.to].push_back({su, need, order[pos]});
        }
      }
    }

    // Detach v: all its remaining arcs point at higher-ranked nodes, and
    // they are exactly the up/down lists just recorded.
    for (const CoreArc& w : succs) EraseArc(&in[w.to], v);
    for (const CoreArc& u : preds) EraseArc(&out[u.to], v);
    out[v].clear();
    out[v].shrink_to_fit();
    in[v].clear();
    in[v].shrink_to_fit();
  }
  // Count shortcuts over the final records, not at creation: a keep-min
  // merge can later turn an original arc into a shortcut (set its via), so
  // only the recorded arcs carry the authoritative count.
  for (const HierarchyNodeRecord& rec : *records) {
    for (const HierarchyArc& arc : rec.up) {
      *num_shortcuts += arc.via != kInvalidNodeId;
    }
    for (const HierarchyArc& arc : rec.down) {
      *num_shortcuts += arc.via != kInvalidNodeId;
    }
  }
  return Status::OK();
}

/// Validation shared by LoadImage and CheckInvariants.
Status ValidateRecords(const std::vector<HierarchyNodeRecord>& records,
                       const HierarchyMeta& meta) {
  const size_t n = records.size();
  if (meta.num_nodes != n) {
    return Status::Corruption(
        "hierarchy metadata claims " + std::to_string(meta.num_nodes) +
        " nodes, found " + std::to_string(n));
  }
  std::unordered_map<NodeId, uint32_t> rank_of;
  rank_of.reserve(n * 2);
  std::vector<char> rank_seen(n, 0);
  for (const HierarchyNodeRecord& rec : records) {
    if (rec.rank >= n || rank_seen[rec.rank]) {
      return Status::Corruption("hierarchy ranks are not a permutation");
    }
    rank_seen[rec.rank] = 1;
    if (!rank_of.emplace(rec.id, rec.rank).second) {
      return Status::Corruption("duplicate hierarchy record for node " +
                                std::to_string(rec.id));
    }
  }
  std::unordered_map<NodeId, const HierarchyNodeRecord*> by_id;
  by_id.reserve(n * 2);
  for (const HierarchyNodeRecord& rec : records) by_id.emplace(rec.id, &rec);

  // Every arc lives on its lower-ranked endpoint and points up the
  // hierarchy; every shortcut's middle node was contracted before that
  // endpoint and its record resolves the shortcut's two halves exactly
  // (the unpacking invariant the CH search relies on).
  auto check_arc = [&](const HierarchyNodeRecord& rec, NodeId from, NodeId to,
                       const HierarchyArc& arc) -> Status {
    auto it = rank_of.find(arc.node);
    if (it == rank_of.end() || it->second <= rec.rank) {
      return Status::Corruption("arc of node " + std::to_string(rec.id) +
                                " does not climb the hierarchy");
    }
    if (arc.via == kInvalidNodeId) return Status::OK();
    auto mid = rank_of.find(arc.via);
    if (mid == rank_of.end() || mid->second >= rec.rank) {
      return Status::Corruption("shortcut middle node of " +
                                std::to_string(rec.id) +
                                " is not a lower-ranked node");
    }
    const HierarchyNodeRecord* via_rec = by_id.at(arc.via);
    auto first = via_rec->DownArcFrom(from);
    auto second = via_rec->UpArcTo(to);
    if (!first.ok() || !second.ok() ||
        first->cost + second->cost != arc.cost) {
      return Status::Corruption(
          "shortcut " + std::to_string(from) + " -> " + std::to_string(to) +
          " does not unpack through node " + std::to_string(arc.via));
    }
    return Status::OK();
  };
  size_t shortcuts = 0;
  for (const HierarchyNodeRecord& rec : records) {
    for (const HierarchyArc& arc : rec.up) {
      CCAM_RETURN_NOT_OK(check_arc(rec, rec.id, arc.node, arc));
      shortcuts += arc.via != kInvalidNodeId;
    }
    for (const HierarchyArc& arc : rec.down) {
      CCAM_RETURN_NOT_OK(check_arc(rec, arc.node, rec.id, arc));
      shortcuts += arc.via != kInvalidNodeId;
    }
  }
  if (shortcuts != meta.num_shortcuts) {
    return Status::Corruption("hierarchy metadata shortcut count mismatch");
  }
  return Status::OK();
}

}  // namespace

HierarchyOverlay::HierarchyOverlay(const AccessMethodOptions& options)
    : options_(options) {}

HierarchyOverlay::~HierarchyOverlay() = default;

void HierarchyOverlay::SetFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  if (disk_) disk_->SetFaultInjector(faults);
  if (wal_) wal_->SetFaultInjector(faults);
}

void HierarchyOverlay::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (disk_) disk_->SetMetrics(metrics);
  if (wal_) wal_->SetMetrics(metrics);
}

void HierarchyOverlay::CreateDevices(size_t page_size) {
  pool_.reset();
  wal_.reset();
  disk_ = std::make_unique<DiskManager>(page_size);
  disk_->SetFailpointPrefix("hier");
  if (options_.durability) {
    wal_ = std::make_unique<Wal>();
    wal_->SetNamePrefix("hier.wal");
    wal_->SetDevice(disk_.get());
    disk_->AttachWal(wal_.get());
    disk_->SetVerifyChecksums(true);
  }
  // The overlay pool mirrors the data pool's shape; it stays unobserved by
  // the metrics registry so its fetches never mix into the data pool's
  // "buffer_pool.*" series (the "hier.*" disk counters carry the signal).
  pool_ = std::make_unique<BufferPool>(disk_.get(), options_.buffer_pool_pages,
                                       options_.replacement,
                                       options_.buffer_pool_shards);
  disk_->SetFaultInjector(faults_);
  disk_->SetMetrics(metrics_);
  if (wal_) {
    wal_->SetFaultInjector(faults_);
    wal_->SetMetrics(metrics_);
  }
}

void HierarchyOverlay::ResetState() {
  pool_.reset();
  wal_.reset();
  disk_.reset();
  page_of_.clear();
  valid_ = false;
  info_ = BuildInfo{};
}

Status HierarchyOverlay::Build(const Network& network) {
  ResetState();

  std::vector<HierarchyNodeRecord> records;
  size_t num_shortcuts = 0;
  CCAM_RETURN_NOT_OK(Contract(network, options_, &records, &num_shortcuts));

  // Encode once; pack in descending rank order so the top of the hierarchy
  // — the nodes every bidirectional search funnels through — occupies the
  // first, hottest pages.
  const size_t n = records.size();
  std::vector<std::string> encoded(n);
  std::vector<NodeId> pack_ids(n);
  size_t max_bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    const HierarchyNodeRecord& rec = records[n - 1 - i];
    rec.EncodeTo(&encoded[i]);
    pack_ids[i] = rec.id;
    max_bytes = std::max(max_bytes, encoded[i].size());
  }
  size_t page_size = options_.page_size;
  while (SlottedPage::MaxRecordSize(page_size) < max_bytes) {
    page_size *= 2;
    if (page_size > kMaxOverlayPageSize) {
      return Status::NoSpace("hierarchy record too large for any page");
    }
  }

  CreateDevices(page_size);
  if (options_.durability) CCAM_RETURN_NOT_OK(disk_->BeginTxn());
  Status s = WriteRecords(encoded, pack_ids, num_shortcuts);
  if (s.ok() && options_.durability) s = disk_->CommitTxn();
  if (!s.ok()) {
    if (disk_->InTxn()) (void)disk_->AbortTxn();
    page_of_.clear();
    valid_ = false;
    return s;
  }
  disk_->ResetStats();
  pool_->ResetCounters();
  info_.nodes = n;
  info_.shortcuts = num_shortcuts;
  info_.pages = disk_->NumAllocatedPages();
  info_.page_size = page_size;
  info_.max_record_bytes = max_bytes;
  valid_ = true;
  return Status::OK();
}

Status HierarchyOverlay::WriteRecords(const std::vector<std::string>& encoded,
                                      const std::vector<NodeId>& ids,
                                      size_t num_shortcuts) {
  const size_t page_size = disk_->page_size();
  // Page 0 is reserved for the metadata record, which is written last (and
  // in non-durable builds flushed last): a torn build leaves no metadata,
  // which reads back as "no overlay".
  PageId meta_page = kInvalidPageId;
  char* meta_data = nullptr;
  CCAM_RETURN_NOT_OK(pool_->NewPage(&meta_page, &meta_data));
  SlottedPage::Initialize(meta_data, page_size);
  CCAM_RETURN_NOT_OK(pool_->UnpinPage(meta_page, true));

  PageId cur = kInvalidPageId;
  char* data = nullptr;
  auto open_new = [&]() -> Status {
    if (cur != kInvalidPageId) CCAM_RETURN_NOT_OK(pool_->UnpinPage(cur, true));
    cur = kInvalidPageId;
    CCAM_RETURN_NOT_OK(pool_->NewPage(&cur, &data));
    SlottedPage::Initialize(data, page_size);
    return Status::OK();
  };
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (cur == kInvalidPageId) CCAM_RETURN_NOT_OK(open_new());
    SlottedPage view(data, page_size);
    if (view.InsertRecord(encoded[i]) < 0) {
      CCAM_RETURN_NOT_OK(open_new());
      SlottedPage fresh(data, page_size);
      if (fresh.InsertRecord(encoded[i]) < 0) {
        return Status::InvalidArgument("hierarchy record does not fit a fresh page");
      }
    }
    page_of_[ids[i]] = cur;
  }
  if (cur != kInvalidPageId) CCAM_RETURN_NOT_OK(pool_->UnpinPage(cur, true));
  CCAM_RETURN_NOT_OK(pool_->FlushAll());

  HierarchyMeta meta;
  meta.num_nodes = encoded.size();
  meta.num_shortcuts = num_shortcuts;
  std::string meta_bytes;
  meta.EncodeTo(&meta_bytes);
  {
    PageGuard guard(pool_.get(), meta_page);
    if (!guard.ok()) return guard.status();
    SlottedPage view(guard.data(), page_size);
    if (view.InsertRecord(meta_bytes) < 0) {
      return Status::InvalidArgument("hierarchy metadata does not fit its page");
    }
    guard.MarkDirty();
  }
  return pool_->FlushPage(meta_page);
}

Result<HierarchyNodeRecord> HierarchyOverlay::ReadNode(NodeId id,
                                                       IoStats* io) {
  if (!valid_) {
    return Status::InvalidArgument("hierarchy overlay not built");
  }
  auto it = page_of_.find(id);
  if (it == page_of_.end()) {
    return Status::NotFound("node " + std::to_string(id) +
                            " not in hierarchy overlay");
  }
  PageGuard guard(pool_.get(), it->second, io);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), disk_->page_size());
  for (int slot : view.LiveSlots()) {
    std::string_view bytes = view.GetRecord(slot);
    if (HierarchyNodeRecord::PeekId(bytes) == id) {
      return HierarchyNodeRecord::Decode(bytes);
    }
  }
  return Status::InvalidArgument("hierarchy record of node " + std::to_string(id) +
                          " missing from its page");
}

IoStats HierarchyOverlay::Stats() const {
  return disk_ ? disk_->stats() : IoStats{};
}

void HierarchyOverlay::ResetStats() {
  if (disk_) disk_->ResetStats();
  if (pool_) pool_->ResetCounters();
}

Status HierarchyOverlay::SaveImage(const std::string& path) const {
  if (disk_ == nullptr) {
    return Status::InvalidArgument("hierarchy overlay has no disk");
  }
  return disk_->SaveToFile(path);
}

Result<std::vector<HierarchyNodeRecord>> HierarchyOverlay::ScanAll(
    HierarchyMeta* meta) {
  const IoStats snapshot = disk_->stats();
  const size_t page_size = disk_->page_size();
  page_of_.clear();
  std::vector<HierarchyNodeRecord> records;
  bool has_meta = false;
  for (PageId page : disk_->AllocatedPageIds()) {
    PageGuard guard(pool_.get(), page);
    if (!guard.ok()) return guard.status();
    SlottedPage view(guard.data(), page_size);
    CCAM_RETURN_NOT_OK(view.Validate());
    for (int slot : view.LiveSlots()) {
      std::string_view bytes = view.GetRecord(slot);
      if (page == 0) {
        if (has_meta) {
          return Status::Corruption("hierarchy metadata page holds extras");
        }
        CCAM_ASSIGN_OR_RETURN(*meta, HierarchyMeta::Decode(bytes));
        has_meta = true;
        continue;
      }
      HierarchyNodeRecord rec;
      CCAM_ASSIGN_OR_RETURN(rec, HierarchyNodeRecord::Decode(bytes));
      page_of_[rec.id] = page;
      records.push_back(std::move(rec));
    }
  }
  disk_->RestoreStats(snapshot);
  if (!has_meta) {
    return Status::NotFound("hierarchy overlay has no metadata record");
  }
  return records;
}

Result<bool> HierarchyOverlay::LoadImage(const std::string& path) {
  ResetState();
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe.good()) return false;  // no overlay image beside the file
  }
  size_t page_size = 0;
  CCAM_ASSIGN_OR_RETURN(page_size, DiskManager::PeekPageSize(path));
  CreateDevices(page_size);
  CCAM_RETURN_NOT_OK(disk_->LoadFromFile(path));
  if (options_.durability) CCAM_RETURN_NOT_OK(disk_->Recover());
  if (disk_->NumAllocatedPages() == 0) {
    // A crash before the build's durability point recovers to an empty
    // overlay disk: no overlay, by design.
    ResetState();
    return false;
  }
  HierarchyMeta meta;
  auto records = ScanAll(&meta);
  if (!records.ok() && records.status().IsNotFound()) {
    // Pages but no metadata record: the build never reached its final
    // write, so the image does not claim to be an overlay.
    ResetState();
    return false;
  }
  if (!records.ok()) return records.status();
  CCAM_RETURN_NOT_OK(ValidateRecords(*records, meta));
  info_.nodes = records->size();
  info_.shortcuts = meta.num_shortcuts;
  info_.pages = disk_->NumAllocatedPages();
  info_.page_size = page_size;
  disk_->ResetStats();
  pool_->ResetCounters();
  valid_ = true;
  return true;
}

Status HierarchyOverlay::CheckInvariants() {
  if (!valid_ || disk_ == nullptr) {
    return Status::InvalidArgument("hierarchy overlay not built");
  }
  HierarchyMeta meta;
  auto records = ScanAll(&meta);
  if (!records.ok()) return records.status();
  return ValidateRecords(*records, meta);
}

}  // namespace ccam
