#ifndef CCAM_CORE_QUERY_SESSION_H_
#define CCAM_CORE_QUERY_SESSION_H_

#include <string>
#include <vector>

#include "src/core/network_file.h"

namespace ccam {

/// A read-only query stream over a shared NetworkFile. Sessions implement
/// the AccessMethod interface so every query driver (route evaluation, A*,
/// traversals, aggregation) runs against one unchanged — but reads go
/// through the file's thread-safe shared path and data-page accesses are
/// counted per session, preserving the paper's accounting convention for
/// each concurrent stream.
///
/// Concurrency contract: one session per thread (the session's counters
/// are plain fields); any number of sessions may operate concurrently on
/// one file, but not concurrently with mutations of the file. A fetch is
/// charged to the session iff it missed the shared buffer pool, so the
/// sessions' counters sum exactly to the file's global disk reads.
///
/// Mutating operations return NotSupported.
class QuerySession : public AccessMethod {
 public:
  explicit QuerySession(NetworkFile* file) : file_(file) {}

  std::string Name() const override { return file_->Name() + "/session"; }

  Status Create(const Network&) override {
    return Status::NotSupported("read-only query session");
  }

  Result<NodeRecord> Find(NodeId id) override {
    return file_->SharedFind(id, &io_);
  }
  Result<NodeRecord> GetASuccessor(NodeId from, NodeId to) override {
    return file_->SharedGetASuccessor(from, to, &io_);
  }
  Result<std::vector<NodeRecord>> GetSuccessors(NodeId id) override {
    return file_->SharedGetSuccessors(id, &io_);
  }

  Status InsertNode(const NodeRecord&, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }
  Status DeleteNode(NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }
  Status InsertEdge(NodeId, NodeId, float, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }
  Status DeleteEdge(NodeId, NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }

  /// This session's data-page accesses (not the file's global counters).
  IoStats DataIoStats() const override { return io_; }
  void ResetIoStats() override {
    io_ = IoStats{};
    hier_io_ = IoStats{};
  }

  /// Overlay reads follow the same per-session convention: a fetch is
  /// charged here iff it missed the overlay's shared buffer pool.
  bool HasHierarchy() const override { return file_->HasHierarchy(); }
  Result<HierarchyNodeRecord> HierarchyNode(NodeId id) override {
    return file_->SharedHierarchyNode(id, &hier_io_);
  }
  IoStats HierarchyIoStats() const override { return hier_io_; }

  const NodePageMap& PageMap() const override { return file_->PageMap(); }
  BufferPool* buffer_pool() override { return file_->buffer_pool(); }
  bool LastOpChangedStructure() const override { return false; }
  size_t NumDataPages() const override { return file_->NumDataPages(); }

  NetworkFile* file() const { return file_; }

  /// Sessions inherit the file's registry, so "query.*" spans from every
  /// concurrent stream land in the same catalog.
  MetricsRegistry* metrics() const override { return file_->metrics(); }

 private:
  NetworkFile* file_;
  IoStats io_;       // per-session: the session is single-threaded by contract
  IoStats hier_io_;  // per-session overlay reads, same contract
};

}  // namespace ccam

#endif  // CCAM_CORE_QUERY_SESSION_H_
