#ifndef CCAM_CORE_QUERY_SESSION_H_
#define CCAM_CORE_QUERY_SESSION_H_

#include <cassert>
#include <string>
#include <thread>
#include <vector>

#include "src/common/request_context.h"
#include "src/core/network_file.h"

namespace ccam {

/// A read-only query stream over a shared NetworkFile. Sessions implement
/// the AccessMethod interface so every query driver (route evaluation, A*,
/// traversals, aggregation) runs against one unchanged — but reads go
/// through the file's thread-safe shared path and data-page accesses are
/// counted per session, preserving the paper's accounting convention for
/// each concurrent stream.
///
/// Concurrency contract: one session per thread (the session's counters
/// are plain fields); any number of sessions may operate concurrently on
/// one file, but not concurrently with mutations of the file. A fetch is
/// charged to the session iff it missed the shared buffer pool, so the
/// sessions' counters sum exactly to the file's global disk reads.
///
/// Debug builds enforce the contract: the session binds to the thread of
/// its first read and asserts every later read runs on that same thread —
/// a violation used to corrupt the per-session counters silently (two
/// unsynchronized writers on plain uint64_t fields) and only surfaced,
/// sometimes, as a conservation mismatch much later. A deliberate
/// single-threaded handoff (a pool worker adopting a session built
/// elsewhere) calls RebindToCurrentThread() at the ownership transfer.
///
/// Mutating operations return NotSupported.
class QuerySession : public AccessMethod {
 public:
  explicit QuerySession(NetworkFile* file) : file_(file) {}

  std::string Name() const override { return file_->Name() + "/session"; }

  Status Create(const Network&) override {
    return Status::NotSupported("read-only query session");
  }

  Result<NodeRecord> Find(NodeId id) override {
    DebugCheckThread();
    if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
    return file_->SharedFind(id, &io_);
  }
  Result<NodeRecord> GetASuccessor(NodeId from, NodeId to) override {
    DebugCheckThread();
    if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
    return file_->SharedGetASuccessor(from, to, &io_);
  }
  Result<std::vector<NodeRecord>> GetSuccessors(NodeId id) override {
    DebugCheckThread();
    if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
    return file_->SharedGetSuccessors(id, &io_);
  }

  Status InsertNode(const NodeRecord&, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }
  Status DeleteNode(NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }
  Status InsertEdge(NodeId, NodeId, float, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }
  Status DeleteEdge(NodeId, NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only query session");
  }

  /// This session's data-page accesses (not the file's global counters).
  IoStats DataIoStats() const override { return io_; }
  void ResetIoStats() override {
    io_ = IoStats{};
    hier_io_ = IoStats{};
  }

  /// Overlay reads follow the same per-session convention: a fetch is
  /// charged here iff it missed the overlay's shared buffer pool.
  bool HasHierarchy() const override { return file_->HasHierarchy(); }
  Result<HierarchyNodeRecord> HierarchyNode(NodeId id) override {
    DebugCheckThread();
    if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
    return file_->SharedHierarchyNode(id, &hier_io_);
  }
  IoStats HierarchyIoStats() const override { return hier_io_; }

  const NodePageMap& PageMap() const override { return file_->PageMap(); }
  BufferPool* buffer_pool() override { return file_->buffer_pool(); }
  bool LastOpChangedStructure() const override { return false; }
  size_t NumDataPages() const override { return file_->NumDataPages(); }

  NetworkFile* file() const { return file_; }

  /// Pins one data page for the lifetime of the returned guard, charging a
  /// pool miss to this session. The region-batched execution path pins a
  /// batch's home page once, so every request in the batch then reads it
  /// as a buffer hit — one fetch serving many queries while the
  /// per-session conservation invariant still holds exactly.
  PageGuard PinDataPage(PageId id) {
    DebugCheckThread();
    return PageGuard(file_->buffer_pool(), id, &io_);
  }

  /// Multi-pin form: pins every distinct page of `ids` (the batch's region
  /// working set) through BufferPool::FetchPages, charging misses here.
  Status PinDataPages(const std::vector<PageId>& ids,
                      std::vector<PageGuard>* guards) {
    DebugCheckThread();
    if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
    return file_->buffer_pool()->FetchPages(ids, guards, &io_);
  }

  /// Attaches (or with nullptr, detaches) the lifecycle context governing
  /// reads through this session. The session does not own the context; the
  /// caller keeps it alive for the duration of the request. Detached is
  /// the default and costs one branch per read.
  void SetRequestContext(RequestContext* ctx) { ctx_ = ctx; }
  RequestContext* request_context() const override { return ctx_; }

  /// Transfers the session to the calling thread (debug-build contract
  /// bookkeeping only). Call at a deliberate ownership handoff — e.g. a
  /// serving worker adopting a session that the service constructed on its
  /// own thread — never to share one session between live threads.
  void RebindToCurrentThread() {
#ifndef NDEBUG
    bound_thread_ = std::this_thread::get_id();
#endif
  }

  /// Sessions inherit the file's registry, so "query.*" spans from every
  /// concurrent stream land in the same catalog.
  MetricsRegistry* metrics() const override { return file_->metrics(); }

 private:
  void DebugCheckThread() {
#ifndef NDEBUG
    if (bound_thread_ == std::thread::id()) {
      bound_thread_ = std::this_thread::get_id();
    }
    assert(bound_thread_ == std::this_thread::get_id() &&
           "QuerySession used from two threads: open one session per thread "
           "(or RebindToCurrentThread() at a single-threaded handoff)");
#endif
  }

  NetworkFile* file_;
  RequestContext* ctx_ = nullptr;  // not owned; null = lifecycle checks off
  IoStats io_;       // per-session: the session is single-threaded by contract
  IoStats hier_io_;  // per-session overlay reads, same contract
#ifndef NDEBUG
  /// Thread of the first read (default id = not yet bound).
  std::thread::id bound_thread_{};
#endif
};

}  // namespace ccam

#endif  // CCAM_CORE_QUERY_SESSION_H_
