#ifndef CCAM_CORE_CCAM_H_
#define CCAM_CORE_CCAM_H_

#include <string>
#include <vector>

#include "src/core/network_file.h"

namespace ccam {

/// How the CCAM data file is created.
enum class CcamCreateMode {
  /// CCAM-S: static create — partition the whole network at once with
  /// cluster-nodes-into-pages. Requires the network to fit in memory.
  kStatic,
  /// CCAM-D: incremental create — a sequence of Add-node() operations with
  /// incremental reclustering, for networks too large for a static
  /// partitioning pass (paper Section 2.2).
  kIncremental,
};

/// The order in which the incremental Create() streams Add-node()
/// operations. The stream order shapes the achievable CRR: spatially or
/// topologically coherent orders give every Add-node() useful neighbor
/// pages to join.
enum class CcamInsertOrder {
  /// Ascending node-id. Generators assign ids in Z-order, so this streams
  /// spatially coherent batches (the default).
  kNodeId,
  /// Breadth-first from a random start: topologically coherent.
  kBfs,
  /// Uniform random: the worst case, every insert lands "far" from the
  /// recent ones.
  kRandom,
};

const char* CcamInsertOrderName(CcamInsertOrder order);

/// The Connectivity-Clustered Access Method. Nodes are assigned to disk
/// pages by graph partitioning (ratio-cut by default) to maximize CRR /
/// WCRR; maintenance operations recluster per the configured reorganization
/// policy (paper Table 1).
class Ccam : public NetworkFile {
 public:
  /// `create_policy` is the reorganization policy Add-node() uses during an
  /// incremental create (the paper's CCAM-D uses second-order).
  explicit Ccam(const AccessMethodOptions& options,
                CcamCreateMode mode = CcamCreateMode::kStatic,
                ReorgPolicy create_policy = ReorgPolicy::kSecondOrder);

  std::string Name() const override;

  Status Create(const Network& network) override;

  /// Add-node() (paper Section 2.2): used by the incremental Create(). The
  /// record is written with its *complete* adjacency lists — unlike
  /// Insert(), no neighbor patching is needed, because every other node's
  /// record already carries (or will carry) the edge. Placement and
  /// reclustering work exactly as in Insert().
  Status AddNode(const NodeRecord& record, ReorgPolicy policy);

  CcamCreateMode create_mode() const { return mode_; }

  /// Sets the Add-node() stream order of the incremental Create(). Must
  /// be called before Create(); has no effect on the static mode.
  void SetIncrementalOrder(CcamInsertOrder order) { insert_order_ = order; }

 private:
  Status AddNodeImpl(const NodeRecord& record, ReorgPolicy policy);

  CcamCreateMode mode_;
  ReorgPolicy create_policy_;
  CcamInsertOrder insert_order_ = CcamInsertOrder::kNodeId;
};

}  // namespace ccam

#endif  // CCAM_CORE_CCAM_H_
