#include "src/core/file_stats.h"

#include <algorithm>
#include <sstream>

#include "src/core/reorg.h"

namespace ccam {

std::string FileStats::ToString() const {
  std::ostringstream out;
  out << "file: " << num_nodes << " records on " << num_pages << " pages\n";
  out << "CRR " << crr << " (upper bound " << crr_upper_bound
      << ")  WCRR " << wcrr << "  gamma " << blocking_factor << "\n";
  out << "fill avg " << avg_fill << " (min " << min_fill << ", max "
      << max_fill << "), " << underfull_pages << " pages under half full\n";
  out << "page-access-graph average degree " << pag_avg_degree << "\n";
  out << "records/page histogram:";
  for (size_t i = 0; i < records_per_page_histogram.size(); ++i) {
    if (records_per_page_histogram[i] > 0) {
      out << " " << i << (i + 1 == records_per_page_histogram.size() ? "+" : "")
          << ":" << records_per_page_histogram[i];
    }
  }
  out << "\n";
  return out.str();
}

Result<FileStats> CollectFileStats(NetworkFile* file,
                                   const Network& network) {
  FileStats stats;
  stats.num_nodes = file->PageMap().size();
  stats.num_pages = file->NumDataPages();
  stats.crr = ComputeCrr(network, file->PageMap());
  stats.wcrr = ComputeWcrr(network, file->PageMap());
  stats.blocking_factor = file->AvgBlockingFactor();

  std::vector<NetworkFile::PageOccupancy> pages;
  CCAM_ASSIGN_OR_RETURN(pages, file->ScanPageOccupancy());
  const double capacity = static_cast<double>(file->PageCapacity());
  constexpr size_t kHistogramBuckets = 32;
  stats.records_per_page_histogram.assign(kHistogramBuckets, 0);
  if (!pages.empty()) {
    stats.min_fill = 1.0;
    for (const auto& p : pages) {
      double fill = static_cast<double>(p.used_bytes) / capacity;
      stats.avg_fill += fill;
      stats.min_fill = std::min(stats.min_fill, fill);
      stats.max_fill = std::max(stats.max_fill, fill);
      if (fill < 0.5) ++stats.underfull_pages;
      size_t bucket =
          std::min<size_t>(p.records, kHistogramBuckets - 1);
      ++stats.records_per_page_histogram[bucket];
    }
    stats.avg_fill /= static_cast<double>(pages.size());
  }

  PageAccessGraph pag = PageAccessGraph::Build(network, file->PageMap());
  stats.pag_avg_degree = pag.AvgDegree();
  stats.crr_upper_bound =
      CrrUpperBound(network, file->PageCapacity(), SlottedPage::kSlotOverhead);
  return stats;
}

}  // namespace ccam
