#ifndef CCAM_CORE_NETWORK_FILE_H_
#define CCAM_CORE_NETWORK_FILE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/access_method.h"
#include "src/core/hierarchy_overlay.h"
#include "src/index/bptree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/page.h"
#include "src/storage/page_quarantine.h"
#include "src/storage/wal.h"

namespace ccam {

class QuerySession;

/// Shared mechanics of all paged network access methods: a data file of
/// slotted pages holding variable-length node records, a data buffer pool,
/// the in-memory node->page map (standing in for the buffered secondary
/// index, per the paper's cost-model convention), the optional real paged
/// B+ tree index, and the Find / Get-A-successor / Get-successors /
/// Insert / Delete machinery.
///
/// Subclasses define the *placement policy*: how Create() assigns nodes to
/// pages, which page receives an inserted node, how an overflowing page is
/// split, and what reorganization (if any) maintenance operations perform.
class NetworkFile : public AccessMethod {
 public:
  explicit NetworkFile(const AccessMethodOptions& options);
  ~NetworkFile() override = default;

  Result<NodeRecord> Find(NodeId id) override;

  /// Find() routed through the paged B+ tree: the index descent is charged
  /// to the index disk's counters (IndexIoStats()), then one data-page
  /// fetch retrieves the record. Models the paper's future-work item
  /// "access cost for secondary indexes should be modeled and evaluated".
  /// Fails with NotSupported when the index is not maintained.
  Result<NodeRecord> FindViaIndex(NodeId id);

  /// Inserts a batch of new nodes, deferring the reorganization of the
  /// touched pages to a single pass at the end (instead of one per
  /// insert). Far cheaper than repeated InsertNode() under the second- and
  /// higher-order policies while reaching a comparable CRR.
  Status BulkInsert(const std::vector<NodeRecord>& records,
                    ReorgPolicy policy);
  Result<NodeRecord> GetASuccessor(NodeId from, NodeId to) override;
  Result<std::vector<NodeRecord>> GetSuccessors(NodeId id) override;
  Status InsertNode(const NodeRecord& record, ReorgPolicy policy) override;
  Status DeleteNode(NodeId id, ReorgPolicy policy) override;
  Status InsertEdge(NodeId u, NodeId v, float cost,
                    ReorgPolicy policy) override;
  Status DeleteEdge(NodeId u, NodeId v, ReorgPolicy policy) override;

  IoStats DataIoStats() const override { return disk_.stats(); }
  void ResetIoStats() override { disk_.ResetStats(); }
  const NodePageMap& PageMap() const override { return page_of_; }
  BufferPool* buffer_pool() override { return &pool_; }
  bool LastOpChangedStructure() const override {
    return last_op_structural_;
  }
  size_t NumDataPages() const override { return disk_.NumAllocatedPages(); }

  const AccessMethodOptions& options() const { return options_; }

  /// Usable record bytes per page (page size minus the slotted-page
  /// header; each record additionally pays the slot overhead).
  size_t PageCapacity() const {
    return options_.page_size - SlottedPage::kHeaderSize;
  }

  /// I/O counters of the secondary index (B+ tree), when maintained.
  std::optional<IoStats> IndexIoStats() const;

  /// The B+ tree index, when maintained (for tests / inspection).
  const BPlusTree* bptree_index() const { return index_.get(); }

  /// Average number of live records per page (gamma in the cost model).
  double AvgBlockingFactor() const;

  /// Physical occupancy of one data page.
  struct PageOccupancy {
    PageId page;
    int records;
    size_t used_bytes;  // live record bytes, excluding slot overhead
  };

  /// Reads every data page once and reports its occupancy. The scan's
  /// page reads are excluded from the data I/O counters.
  Result<std::vector<PageOccupancy>> ScanPageOccupancy();

  /// Reconstructs the logical network from the stored records: every node
  /// with its true coordinates and payload, every successor edge with its
  /// cost (predecessor lists rebuild implicitly; edge access weights are
  /// not persisted and come back uniform). Like ScanPageOccupancy, the
  /// scan's page reads are excluded from the data I/O counters. Snapshot
  /// recovery uses this to rebuild the authoritative network from a
  /// published image before replaying the delta log onto it.
  Result<Network> ExportNetwork();

  /// Verifies file-structure invariants (every mapped node present exactly
  /// once on its page, records decode, index agrees). For tests.
  Status CheckFileInvariants();

  /// Verifies graph-level invariants over the stored records: every
  /// successor/predecessor endpoint is a present node, and adjacency is
  /// symmetric (u lists v as successor with cost c iff v lists u as
  /// predecessor with cost c). The crash-recovery harness runs this after
  /// OpenImage: a crash mid-maintenance leaves either a consistent file or
  /// a typed Corruption here — never a silently half-patched graph.
  /// Virtual: shard files store halo copies whose adjacency deliberately
  /// references nodes owned by other shards, so their override relaxes the
  /// every-endpoint-present check (see src/shard/sharded_network_file.h).
  virtual Status CheckGraphInvariants();

  /// Attaches a fault injector to every simulated device of this file
  /// (nullptr detaches): the data disk ("disk.*" failpoints), the index
  /// disk when maintained ("index.*"), the write-ahead log when durability
  /// is on ("wal.append" / "wal.flush"), and the hierarchy overlay's disk
  /// and log when present ("hier.*" / "hier.wal.*"). The distinct prefixes
  /// let one fault schedule target any device without touching the others.
  void SetFaultInjector(FaultInjector* faults) {
    faults_ = faults;
    disk_.SetFaultInjector(faults);
    if (index_disk_) index_disk_->SetFaultInjector(faults);
    if (wal_) wal_->SetFaultInjector(faults);
    if (hierarchy_) hierarchy_->SetFaultInjector(faults);
  }

  /// The write-ahead log, when durability is on (for tests / inspection).
  Wal* wal() { return wal_.get(); }

  /// Attaches (or detaches) a metrics registry to every simulated device
  /// of this file: the data disk ("disk.*" counters and latency
  /// histograms), the data buffer pool ("buffer_pool.*"), the index disk
  /// when maintained ("index.*" — the index pool stays unobserved so its
  /// traffic never mixes into the buffer_pool.* series), and the
  /// write-ahead log when durability is on ("wal.*"). Query sessions
  /// opened from this file inherit the registry for their "query.*"
  /// spans. The hierarchy overlay's disk and log report under "hier.*" /
  /// "hier.wal.*". Attach while the file is quiescent.
  void SetMetrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    disk_.SetMetrics(metrics);
    pool_.SetMetrics(metrics);
    quarantine_.SetMetrics(metrics);
    if (index_disk_) index_disk_->SetMetrics(metrics);
    if (wal_) wal_->SetMetrics(metrics);
    if (hierarchy_) hierarchy_->SetMetrics(metrics);
  }
  MetricsRegistry* metrics() const override { return metrics_; }

  /// Complete reorganization: reclusters the entire data file (Table 1's
  /// "all pages in data file" option — the expensive global pass the
  /// incremental policies exist to avoid). Restores near-create CRR after
  /// heavy churn. All existing pages are rewritten.
  Status ReorganizeAll();

  /// --- Lazy (delayed) reorganization ------------------------------------
  /// The paper's Table 1 sketch: "a lazy or delayed reorganization policy
  /// may reorganize NbrPages(P) after a certain number of updates to page
  /// P". When enabled, every update operation tracks per-page update
  /// counts; once a page accumulates `threshold` updates, {P} ∪
  /// NbrPages(P) is reclustered and the counts reset. Composes with the
  /// per-operation policy (typically used with kFirstOrder).
  void EnableLazyReorganization(int threshold);
  void DisableLazyReorganization() { lazy_threshold_ = 0; }
  /// Number of lazy reorganizations triggered so far.
  uint64_t LazyReorgCount() const { return lazy_reorgs_; }

  /// --- Persistence -------------------------------------------------------
  /// Flushes and writes the data-file disk image to a real file.
  Status SaveImage(const std::string& path);

  /// Loads a previously saved image into this (freshly constructed, not
  /// yet Create()d) file and rebuilds the in-memory maps and the B+ tree
  /// index by scanning the pages. The options' page size must match the
  /// image. Placement structures of spatial subclasses are not restored;
  /// see GridAm.
  virtual Status OpenImage(const std::string& path);

  /// --- Concurrent read path ----------------------------------------------
  /// Thread-safe read operations against the shared pool. Many threads may
  /// call these concurrently with each other (but not with any mutation:
  /// the file keeps its single-writer discipline). When `io` is given, it
  /// receives the calling stream's data-page reads — a fetch is charged iff
  /// it missed the shared pool, so the per-stream counters sum exactly to
  /// the global disk counters.
  Result<NodeRecord> SharedFind(NodeId id, IoStats* io);
  Result<NodeRecord> SharedGetASuccessor(NodeId from, NodeId to, IoStats* io);
  Result<std::vector<NodeRecord>> SharedGetSuccessors(NodeId id, IoStats* io);

  /// --- Contraction-hierarchy overlay --------------------------------------
  /// (Re)builds the overlay from the stored records: scans every data page
  /// (the scan's reads are excluded from the data I/O counters, like
  /// ScanPageOccupancy), contracts the reconstructed network, and persists
  /// the shortcut graph beside the file. Create() does this automatically
  /// when options.hierarchy_overlay is set; call it explicitly after
  /// OpenImage or a mutation batch to re-enable CH queries.
  Status BuildHierarchyOverlay();

  bool HasHierarchy() const override {
    return hierarchy_ != nullptr && hierarchy_->valid();
  }
  Result<HierarchyNodeRecord> HierarchyNode(NodeId id) override {
    return SharedHierarchyNode(id, nullptr);
  }
  IoStats HierarchyIoStats() const override {
    return hierarchy_ ? hierarchy_->Stats() : IoStats{};
  }

  /// Thread-safe overlay read for concurrent query sessions; a pool miss
  /// charges one read to `io`.
  Result<HierarchyNodeRecord> SharedHierarchyNode(NodeId id, IoStats* io);

  /// The overlay itself (tests, benches); null until built.
  HierarchyOverlay* hierarchy() { return hierarchy_.get(); }

  /// Drops the overlay. Every mutation does this implicitly: a shortcut
  /// graph over stale records must never answer queries.
  void InvalidateHierarchyOverlay() { hierarchy_.reset(); }

  /// Opens a read-only query session: an AccessMethod view over this file
  /// with its own per-session IoStats. One session per thread; sessions
  /// share this file's buffer pool.
  std::unique_ptr<QuerySession> OpenSession();

  /// The simulated data disk (throughput experiments configure its
  /// simulated read latency).
  DiskManager* disk() { return &disk_; }

  /// Corruption-containment set of the data pool: pages whose reads kept
  /// failing the pool's bounded re-reads fail fast with a typed
  /// Quarantined status until scrubbed. Always attached; empty costs one
  /// atomic load per pool miss.
  PageQuarantine* quarantine() { return &quarantine_; }

  /// Scrub/repair pass over the quarantine: verifies each quarantined
  /// page's stored checksum (no data I/O is charged) and clears the entry
  /// when the page verifies — e.g. after a transient fault burst or an
  /// out-of-band restore. `repaired`/`remaining` (optional) receive the
  /// pass's tally; pages that still fail verification stay quarantined.
  Status ScrubQuarantined(size_t* repaired = nullptr,
                          size_t* remaining = nullptr);

 protected:
  /// Runs one public maintenance operation as a WAL transaction when
  /// durability is on. The outermost scope of an operation owns the
  /// transaction; nested scopes (BulkInsert calling InsertNode, create
  /// loops calling AddNode) are no-ops, so a batch is one group commit.
  ///
  ///   MutationScope txn(this);
  ///   return txn.Finish(DoTheWork());
  ///
  /// Finish commits on OK — the operation is acknowledged only after the
  /// WAL flush barrier — and aborts otherwise, discarding the staged
  /// overlay and every cached frame it touched, so the platter and the
  /// pool both keep the pre-operation state. With durability off the scope
  /// is a no-op and the operation behaves exactly as before.
  class MutationScope {
   public:
    explicit MutationScope(NetworkFile* file);
    ~MutationScope();
    Status Finish(Status op_status);

   private:
    NetworkFile* file_;
    bool owns_ = false;
    bool done_ = false;
  };

  /// Materializes `pages` (node sets) into data pages and builds the
  /// indexes. Used by subclasses' Create().
  Status BuildFromAssignment(const Network& network,
                             const std::vector<std::vector<NodeId>>& pages);

  /// Contracts `network` into a fresh overlay (the no-rescan path used by
  /// create operations that still hold the logical network).
  Status BuildHierarchyOverlayFromNetwork(const Network& network);

  /// Reads and decodes the record of `id` through the buffer pool. When
  /// `io` is given, a pool miss charges one read to it (per-session
  /// accounting).
  Result<NodeRecord> ReadRecord(NodeId id, IoStats* io = nullptr);

  /// GetSuccessors with per-stream accounting; the public override
  /// delegates here with `io` = nullptr.
  Result<std::vector<NodeRecord>> GetSuccessorsTracked(NodeId id,
                                                       IoStats* io);

  /// Rewrites `record` in place on its page. If it no longer fits, splits
  /// the page (sets the structural-change flag).
  Status WriteRecord(const NodeRecord& record);

  /// Inserts `record` into page `page`. Fails with NoSpace when full.
  Status AddRecordToPage(PageId page, const NodeRecord& record);

  /// Removes the record of `id` from its page (does not touch neighbors).
  Status RemoveRecordFromPage(NodeId id);

  /// Pages holding the (present) neighbors of `record`, deduplicated.
  std::vector<PageId> PagesOfNeighbors(const NodeRecord& record) const;

  /// Pages adjacent to `page` in the page access graph: pages holding any
  /// neighbor of any node stored on `page`. Reads `page` (usually already
  /// buffered); the neighbor lookup itself uses the in-memory map.
  Result<std::vector<PageId>> NbrPages(PageId page);

  /// All node-ids currently stored on `page`.
  Result<std::vector<NodeId>> NodesOnPage(PageId page);

  /// Reads all records stored on `page`.
  Result<std::vector<NodeRecord>> RecordsOnPage(PageId page);

  /// Splits an overflowing page. `pending` holds the page's logical
  /// contents (including any grown record that triggered the overflow).
  /// The default splits by connectivity reclustering; subclasses override
  /// (order-based and spatial splits for the baselines).
  virtual Status SplitPage(PageId page, std::vector<NodeRecord> pending);

  /// Chooses the page for a new node. Default (CCAM, paper Figure 3):
  /// the page holding the most neighbors of the node that still has room.
  /// Returns kInvalidPageId when no suitable page exists (caller
  /// allocates). Subclasses override for append/spatial placement.
  virtual PageId ChoosePageForInsert(const NodeRecord& record);

  /// Notification that a new node's record landed on `page` (after
  /// ChoosePageForInsert / fresh-page allocation). Lets subclasses keep
  /// their placement structures (append cursor, spatial buckets) in sync.
  virtual void OnRecordPlaced(NodeId id, PageId page) {
    (void)id;
    (void)page;
  }

  /// Reorganizes `pages`: reads their records, reclusters the induced
  /// subnetwork with cluster-nodes-into-pages, and rewrites the pages
  /// (reusing ids, allocating or freeing as needed).
  Status Reorganize(std::vector<PageId> pages);

  /// Hook run by maintenance operations after the first-order work, when
  /// the policy asks for reorganization. `touched` is the page set from
  /// Table 1 for the given argument. Default: recluster them. Baselines
  /// that do not recluster may override to a no-op.
  virtual Status ReorganizeForPolicy(ReorgPolicy policy,
                                     std::vector<PageId> touched);

  /// Writes every dirty buffered page out (end-of-operation flush, so that
  /// write I/O is attributed to the operation that dirtied the pages).
  Status FlushDirty() { return pool_.FlushAll(); }

  /// End-of-update hook: runs any due lazy reorganizations, then flushes.
  /// Every public maintenance operation ends with this.
  Status FinishUpdate();

  /// Bumps the lazy-reorganization update counter of `page`.
  void NoteUpdate(PageId page);

  /// Merges underflowing page `p` into / with a neighbor page `q`.
  Status MergePages(PageId p, PageId q);

  /// First-order underflow handling after a node deletion: drops `home`
  /// when empty, merges it with a neighbor page when under half full
  /// (paper Figure 4). GridFile-AM overrides to keep sparse buckets.
  virtual Status HandleUnderflow(PageId home,
                                 const std::vector<PageId>& nbr_pages);

  /// Allocates an empty formatted data page.
  Result<PageId> NewDataPage();

  /// Frees `page` (must be empty) and drops its buffer frame.
  Status DropDataPage(PageId page);

  /// Updates both indexes for a (re)placed node.
  Status IndexSet(NodeId id, PageId page);
  Status IndexErase(NodeId id);

  /// Rewrites `subsets` of records into data pages, reusing the ids in
  /// `reuse` first, allocating extras, and freeing leftovers. Updates the
  /// indexes and the free-space cache.
  Status RewritePages(const std::vector<PageId>& reuse,
                      const std::vector<std::vector<NodeId>>& subsets,
                      const std::unordered_map<NodeId, NodeRecord>& records);

  /// Builds the subnetwork induced by `records` (edges among them only),
  /// the input to reclustering.
  static Network NetworkFromRecords(const std::vector<NodeRecord>& records);

  /// Remembers the free space of `page` (an in-memory free-space map, so
  /// placement decisions do not charge data-page I/O).
  void NoteFreeSpace(PageId page, const SlottedPage& view);

  /// Bodies of the public maintenance operations; the public entry points
  /// wrap them in a MutationScope.
  Status BuildFromAssignmentBody(
      const Network& network, const std::vector<std::vector<NodeId>>& pages);
  Status BulkInsertImpl(const std::vector<NodeRecord>& records,
                        ReorgPolicy policy);
  Status InsertNodeImpl(const NodeRecord& record, ReorgPolicy policy);
  Status DeleteNodeImpl(NodeId id, ReorgPolicy policy);
  Status InsertEdgeImpl(NodeId u, NodeId v, float cost, ReorgPolicy policy);
  Status DeleteEdgeImpl(NodeId u, NodeId v, ReorgPolicy policy);

  AccessMethodOptions options_;
  DiskManager disk_;
  BufferPool pool_;
  /// Containment set for persistently unreadable data pages; the
  /// constructor attaches it to pool_.
  PageQuarantine quarantine_;
  NodePageMap page_of_;
  /// In-memory free-space map: bytes available for one more record.
  std::unordered_map<PageId, size_t> free_space_;

  // Optional real secondary index on its own simulated disk, so its I/O
  // never mixes into the data-page counters.
  std::unique_ptr<DiskManager> index_disk_;
  std::unique_ptr<BufferPool> index_pool_;
  std::unique_ptr<BPlusTree> index_;

  /// Write-ahead log of the data disk; non-null iff durability is on.
  std::unique_ptr<Wal> wal_;

  /// Contraction-hierarchy overlay; non-null iff built and still valid.
  std::unique_ptr<HierarchyOverlay> hierarchy_;
  /// Remembered so a later overlay build inherits the injector.
  FaultInjector* faults_ = nullptr;

  bool last_op_structural_ = false;
  uint64_t reorg_seed_ = 0;

  /// Attached registry (null = observability off); see SetMetrics.
  MetricsRegistry* metrics_ = nullptr;

  // Lazy reorganization state.
  int lazy_threshold_ = 0;  // 0 = disabled
  std::unordered_map<PageId, int> update_counts_;
  bool in_reorg_ = false;
  uint64_t lazy_reorgs_ = 0;
};

}  // namespace ccam

#endif  // CCAM_CORE_NETWORK_FILE_H_
