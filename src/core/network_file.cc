#include "src/core/network_file.h"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>
#include <unordered_set>

#include "src/core/query_session.h"
#include "src/partition/recursive_bisection.h"

namespace ccam {

const char* ReorgPolicyName(ReorgPolicy policy) {
  switch (policy) {
    case ReorgPolicy::kFirstOrder:
      return "first-order";
    case ReorgPolicy::kSecondOrder:
      return "second-order";
    case ReorgPolicy::kHigherOrder:
      return "higher-order";
  }
  return "unknown";
}

NetworkFile::NetworkFile(const AccessMethodOptions& options)
    : options_(options),
      disk_(options.page_size),
      pool_(&disk_, options.buffer_pool_pages, options.replacement,
            options.buffer_pool_shards),
      reorg_seed_(options.seed ^ 0x5bf03635ULL) {
  pool_.SetQuarantine(&quarantine_);
  if (options_.maintain_bptree_index) {
    index_disk_ = std::make_unique<DiskManager>(options_.page_size);
    index_disk_->SetFailpointPrefix("index");
    index_pool_ = std::make_unique<BufferPool>(
        index_disk_.get(), std::max<size_t>(4, options_.index_pool_pages));
    index_ = std::make_unique<BPlusTree>(index_disk_.get(), index_pool_.get());
  }
  if (options_.durability) {
    wal_ = std::make_unique<Wal>();
    wal_->SetDevice(&disk_);
    disk_.AttachWal(wal_.get());
    disk_.SetVerifyChecksums(true);
    if (index_disk_) index_disk_->SetVerifyChecksums(true);
  }
}

Status NetworkFile::ScrubQuarantined(size_t* repaired, size_t* remaining) {
  size_t fixed = 0;
  for (const auto& [page, reason] : quarantine_.Entries()) {
    (void)reason;
    // VerifyPage re-reads the platter and checks the stored seal without
    // charging data I/O; injected faults still apply, so a scrub during a
    // fault burst honestly reports the page as still bad.
    if (disk_.VerifyPage(page).ok()) {
      quarantine_.Clear(page);
      ++fixed;
    }
  }
  if (repaired != nullptr) *repaired = fixed;
  if (remaining != nullptr) *remaining = quarantine_.size();
  return Status::OK();
}

NetworkFile::MutationScope::MutationScope(NetworkFile* file) : file_(file) {
  // Every mutation drops the hierarchy overlay: a shortcut graph built
  // over records that are about to change must never answer queries.
  file_->InvalidateHierarchyOverlay();
  if (file_->options_.durability && !file_->disk_.InTxn()) {
    owns_ = file_->disk_.BeginTxn().ok();
  }
}

NetworkFile::MutationScope::~MutationScope() {
  if (owns_ && !done_) (void)Finish(Status::IOError("operation abandoned"));
}

Status NetworkFile::MutationScope::Finish(Status op_status) {
  if (!owns_) return op_status;
  done_ = true;
  std::vector<PageId> touched = file_->disk_.TxnTouchedPages();
  if (op_status.ok()) {
    Status commit = file_->disk_.CommitTxn();
    if (commit.ok()) return Status::OK();
    // The commit failed (injected log/device fault): the platter holds the
    // pre-transaction state — or, past the flush barrier, a partial apply
    // the next recovery completes. Either way the cached frames are stale.
    for (PageId id : touched) {
      file_->pool_.Discard(id);
      file_->free_space_.erase(id);
    }
    return commit;
  }
  (void)file_->disk_.AbortTxn();
  for (PageId id : touched) {
    file_->pool_.Discard(id);
    file_->free_space_.erase(id);
    file_->update_counts_.erase(id);
  }
  return op_status;
}

std::optional<IoStats> NetworkFile::IndexIoStats() const {
  if (!index_disk_) return std::nullopt;
  return index_disk_->stats();
}

double NetworkFile::AvgBlockingFactor() const {
  size_t pages = disk_.NumAllocatedPages();
  if (pages == 0) return 0.0;
  return static_cast<double>(page_of_.size()) / static_cast<double>(pages);
}

void NetworkFile::NoteFreeSpace(PageId page, const SlottedPage& view) {
  free_space_[page] = view.FreeSpaceForRecord();
}

Status NetworkFile::IndexSet(NodeId id, PageId page) {
  page_of_[id] = page;
  if (index_) return index_->Put(id, page);
  return Status::OK();
}

Status NetworkFile::IndexErase(NodeId id) {
  page_of_.erase(id);
  if (index_) return index_->Delete(id);
  return Status::OK();
}

Result<PageId> NetworkFile::NewDataPage() {
  PageId id;
  char* data = nullptr;
  CCAM_RETURN_NOT_OK(pool_.NewPage(&id, &data));
  SlottedPage::Initialize(data, options_.page_size);
  NoteFreeSpace(id, SlottedPage(data, options_.page_size));
  CCAM_RETURN_NOT_OK(pool_.UnpinPage(id, true));
  return id;
}

Status NetworkFile::DropDataPage(PageId page) {
  pool_.Discard(page);
  free_space_.erase(page);
  return disk_.FreePage(page);
}

Status NetworkFile::BuildFromAssignment(
    const Network& network, const std::vector<std::vector<NodeId>>& pages) {
  MutationScope txn(this);
  Status built = txn.Finish(BuildFromAssignmentBody(network, pages));
  if (built.ok() && options_.durability) {
    // The commit apply lands the creation writes after the body's reset;
    // creation I/O is not part of any operation measurement either way.
    disk_.ResetStats();
    if (index_disk_) index_disk_->ResetStats();
  }
  if (built.ok() && options_.hierarchy_overlay) {
    // The logical network is still in hand: contract it directly instead
    // of rescanning the pages just written.
    CCAM_RETURN_NOT_OK(BuildHierarchyOverlayFromNetwork(network));
  }
  return built;
}

Status NetworkFile::BuildFromAssignmentBody(
    const Network& network, const std::vector<std::vector<NodeId>>& pages) {
  if (!page_of_.empty()) {
    return Status::InvalidArgument("file already created");
  }
  std::vector<std::pair<uint64_t, uint64_t>> index_entries;
  for (const std::vector<NodeId>& subset : pages) {
    if (subset.empty()) continue;
    PageId page;
    CCAM_ASSIGN_OR_RETURN(page, NewDataPage());
    auto res = pool_.FetchPage(page);
    if (!res.ok()) return res.status();
    SlottedPage view(*res, options_.page_size);
    for (NodeId id : subset) {
      if (!network.HasNode(id)) {
        (void)pool_.UnpinPage(page, true);
        return Status::InvalidArgument("assignment references missing node");
      }
      NodeRecord rec = NodeRecord::FromNetworkNode(id, network.node(id));
      if (view.InsertRecord(rec.Encode()) < 0) {
        (void)pool_.UnpinPage(page, true);
        return Status::NoSpace("page assignment overflows page");
      }
      page_of_[id] = page;
      index_entries.emplace_back(id, page);
    }
    NoteFreeSpace(page, view);
    CCAM_RETURN_NOT_OK(pool_.UnpinPage(page, true));
  }
  CCAM_RETURN_NOT_OK(pool_.FlushAll());
  if (index_) {
    std::sort(index_entries.begin(), index_entries.end());
    CCAM_RETURN_NOT_OK(index_->BulkLoad(index_entries));
  }
  // Creation I/O is not part of any operation measurement.
  disk_.ResetStats();
  if (index_disk_) index_disk_->ResetStats();
  return Status::OK();
}

Result<NodeRecord> NetworkFile::ReadRecord(NodeId id, IoStats* io) {
  auto it = page_of_.find(id);
  if (it == page_of_.end()) {
    return Status::NotFound("node " + std::to_string(id));
  }
  PageGuard guard(&pool_, it->second, io);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  for (int slot : view.LiveSlots()) {
    std::string_view bytes = view.GetRecord(slot);
    if (NodeRecord::PeekId(bytes) == id) {
      return NodeRecord::Decode(bytes);
    }
  }
  return Status::Corruption("node " + std::to_string(id) +
                            " missing from its page");
}

Status NetworkFile::WriteRecord(const NodeRecord& record) {
  auto it = page_of_.find(record.id);
  if (it == page_of_.end()) {
    return Status::NotFound("node " + std::to_string(record.id));
  }
  PageId page = it->second;
  PageGuard guard(&pool_, page);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  for (int slot : view.LiveSlots()) {
    if (NodeRecord::PeekId(view.GetRecord(slot)) != record.id) continue;
    Status s = view.UpdateRecord(slot, record.Encode());
    if (s.ok()) {
      NoteFreeSpace(page, view);
      NoteUpdate(page);
      guard.MarkDirty();
      return Status::OK();
    }
    if (!s.IsNoSpace()) return s;
    // Overflow: split the page with the grown record included.
    std::vector<NodeRecord> pending;
    for (int other : view.LiveSlots()) {
      auto rec = NodeRecord::Decode(view.GetRecord(other));
      if (!rec.ok()) return rec.status();
      if (rec->id == record.id) {
        pending.push_back(record);
      } else {
        pending.push_back(std::move(*rec));
      }
    }
    guard.Release();
    last_op_structural_ = true;
    return SplitPage(page, std::move(pending));
  }
  return Status::Corruption("record to update missing from its page");
}

Status NetworkFile::AddRecordToPage(PageId page, const NodeRecord& record) {
  PageGuard guard(&pool_, page);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  if (view.InsertRecord(record.Encode()) < 0) {
    return Status::NoSpace("page " + std::to_string(page) + " full");
  }
  NoteFreeSpace(page, view);
  NoteUpdate(page);
  guard.MarkDirty();
  return IndexSet(record.id, page);
}

Status NetworkFile::RemoveRecordFromPage(NodeId id) {
  auto it = page_of_.find(id);
  if (it == page_of_.end()) {
    return Status::NotFound("node " + std::to_string(id));
  }
  PageId page = it->second;
  PageGuard guard(&pool_, page);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  for (int slot : view.LiveSlots()) {
    if (NodeRecord::PeekId(view.GetRecord(slot)) == id) {
      CCAM_RETURN_NOT_OK(view.DeleteRecord(slot));
      NoteFreeSpace(page, view);
      NoteUpdate(page);
      guard.MarkDirty();
      return IndexErase(id);
    }
  }
  return Status::Corruption("record to delete missing from its page");
}

std::vector<PageId> NetworkFile::PagesOfNeighbors(
    const NodeRecord& record) const {
  std::set<PageId> pages;
  for (NodeId nbr : record.Neighbors()) {
    auto it = page_of_.find(nbr);
    if (it != page_of_.end()) pages.insert(it->second);
  }
  return {pages.begin(), pages.end()};
}

Result<std::vector<NodeId>> NetworkFile::NodesOnPage(PageId page) {
  PageGuard guard(&pool_, page);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  std::vector<NodeId> out;
  for (int slot : view.LiveSlots()) {
    out.push_back(NodeRecord::PeekId(view.GetRecord(slot)));
  }
  return out;
}

Result<std::vector<NodeRecord>> NetworkFile::RecordsOnPage(PageId page) {
  PageGuard guard(&pool_, page);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  std::vector<NodeRecord> out;
  for (int slot : view.LiveSlots()) {
    auto rec = NodeRecord::Decode(view.GetRecord(slot));
    if (!rec.ok()) return rec.status();
    out.push_back(std::move(*rec));
  }
  return out;
}

Result<std::vector<PageId>> NetworkFile::NbrPages(PageId page) {
  std::vector<NodeRecord> records;
  CCAM_ASSIGN_OR_RETURN(records, RecordsOnPage(page));
  std::set<PageId> out;
  for (const NodeRecord& rec : records) {
    for (NodeId nbr : rec.Neighbors()) {
      auto it = page_of_.find(nbr);
      if (it != page_of_.end() && it->second != page) out.insert(it->second);
    }
  }
  return std::vector<PageId>(out.begin(), out.end());
}

Network NetworkFile::NetworkFromRecords(
    const std::vector<NodeRecord>& records) {
  Network net;
  std::unordered_set<NodeId> present;
  for (const NodeRecord& rec : records) present.insert(rec.id);
  for (const NodeRecord& rec : records) {
    // The temporary node keeps only edges to co-reorganized nodes, but the
    // partitioner must see the *actual* on-page record size — records may
    // reference nodes outside this set (e.g. during incremental create).
    // Pad the payload so RecordSizeOf(temp node) == rec.EncodedSize().
    size_t kept_succ = 0, kept_pred = 0;
    for (const AdjEntry& e : rec.succ) kept_succ += present.count(e.node);
    for (const AdjEntry& e : rec.pred) kept_pred += present.count(e.node);
    size_t padded_payload =
        rec.EncodedSize() - kNodeRecordFixedBytes -
        kNodeRecordAdjEntryBytes * (kept_succ + kept_pred);
    (void)net.AddNode(rec.id, rec.x, rec.y,
                      std::string(padded_payload, '\0'));
  }
  for (const NodeRecord& rec : records) {
    for (const AdjEntry& e : rec.succ) {
      if (present.count(e.node)) (void)net.AddEdge(rec.id, e.node, e.cost);
    }
  }
  return net;
}

Status NetworkFile::RewritePages(
    const std::vector<PageId>& reuse,
    const std::vector<std::vector<NodeId>>& subsets,
    const std::unordered_map<NodeId, NodeRecord>& records) {
  std::vector<PageId> targets;
  for (size_t i = 0; i < subsets.size(); ++i) {
    if (i < reuse.size()) {
      targets.push_back(reuse[i]);
    } else {
      PageId page;
      CCAM_ASSIGN_OR_RETURN(page, NewDataPage());
      targets.push_back(page);
    }
  }
  for (size_t i = 0; i < subsets.size(); ++i) {
    PageId page = targets[i];
    PageGuard guard(&pool_, page);
    if (!guard.ok()) return guard.status();
    SlottedPage::Initialize(guard.data(), options_.page_size);
    SlottedPage view(guard.data(), options_.page_size);
    for (NodeId id : subsets[i]) {
      auto it = records.find(id);
      if (it == records.end()) {
        return Status::Corruption("rewrite subset references unknown node");
      }
      if (view.InsertRecord(it->second.Encode()) < 0) {
        return Status::NoSpace("reclustered subset overflows page");
      }
      CCAM_RETURN_NOT_OK(IndexSet(id, page));
    }
    NoteFreeSpace(page, view);
    update_counts_.erase(page);  // freshly clustered
    guard.MarkDirty();
  }
  // Free reusable pages that are no longer needed.
  for (size_t i = subsets.size(); i < reuse.size(); ++i) {
    CCAM_RETURN_NOT_OK(DropDataPage(reuse[i]));
  }
  return Status::OK();
}

Status NetworkFile::SplitPage(PageId page, std::vector<NodeRecord> pending) {
  Network net = NetworkFromRecords(pending);
  ClusterOptions copts;
  copts.page_capacity = PageCapacity();
  copts.per_record_overhead = SlottedPage::kSlotOverhead;
  copts.algorithm = options_.partitioner;
  copts.use_access_weights = false;
  copts.min_fill_fraction = options_.cluster_min_fill;
  copts.seed = reorg_seed_++;
  copts.num_threads = options_.num_threads;
  std::vector<std::vector<NodeId>> subsets;
  CCAM_ASSIGN_OR_RETURN(subsets,
                        ClusterNodesIntoPages(net, net.NodeIds(), copts));
  std::unordered_map<NodeId, NodeRecord> by_id;
  for (NodeRecord& rec : pending) by_id.emplace(rec.id, std::move(rec));
  last_op_structural_ = true;
  return RewritePages({page}, subsets, by_id);
}

PageId NetworkFile::ChoosePageForInsert(const NodeRecord& record) {
  // Rank candidate pages by the number of neighbors of the new node they
  // hold; pick the best one that still has room (paper Figure 3).
  std::map<PageId, int> neighbor_count;
  for (NodeId nbr : record.Neighbors()) {
    auto it = page_of_.find(nbr);
    if (it != page_of_.end()) neighbor_count[it->second]++;
  }
  size_t need = record.EncodedSize();
  PageId best = kInvalidPageId;
  int best_count = 0;
  for (const auto& [page, count] : neighbor_count) {
    auto fs = free_space_.find(page);
    if (fs == free_space_.end() || fs->second < need) continue;
    if (count > best_count) {
      best_count = count;
      best = page;
    }
  }
  return best;
}

Status NetworkFile::Reorganize(std::vector<PageId> pages) {
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  if (pages.empty()) return Status::OK();

  std::vector<NodeRecord> all;
  for (PageId page : pages) {
    std::vector<NodeRecord> records;
    CCAM_ASSIGN_OR_RETURN(records, RecordsOnPage(page));
    for (NodeRecord& rec : records) all.push_back(std::move(rec));
  }
  Network net = NetworkFromRecords(all);
  ClusterOptions copts;
  copts.page_capacity = PageCapacity();
  copts.per_record_overhead = SlottedPage::kSlotOverhead;
  copts.algorithm = options_.partitioner;
  copts.use_access_weights = false;
  copts.min_fill_fraction = options_.cluster_min_fill;
  copts.seed = reorg_seed_++;
  copts.num_threads = options_.num_threads;
  std::vector<std::vector<NodeId>> subsets;
  CCAM_ASSIGN_OR_RETURN(subsets,
                        ClusterNodesIntoPages(net, net.NodeIds(), copts));
  std::unordered_map<NodeId, NodeRecord> by_id;
  for (NodeRecord& rec : all) by_id.emplace(rec.id, std::move(rec));
  return RewritePages(pages, subsets, by_id);
}

Status NetworkFile::ReorganizeForPolicy(ReorgPolicy policy,
                                        std::vector<PageId> touched) {
  if (policy == ReorgPolicy::kFirstOrder) return Status::OK();
  return Reorganize(std::move(touched));
}

Status NetworkFile::ReorganizeAll() {
  MutationScope txn(this);
  last_op_structural_ = true;
  std::vector<PageId> pages = disk_.AllocatedPageIds();
  Status st = Reorganize(std::move(pages));
  if (st.ok()) st = FlushDirty();
  return txn.Finish(st);
}

Result<std::vector<NetworkFile::PageOccupancy>>
NetworkFile::ScanPageOccupancy() {
  IoStats snapshot = disk_.stats();
  std::vector<PageOccupancy> out;
  for (PageId page : disk_.AllocatedPageIds()) {
    PageGuard guard(&pool_, page);
    if (!guard.ok()) return guard.status();
    SlottedPage view(guard.data(), options_.page_size);
    out.push_back({page, view.NumRecords(), view.UsedBytes()});
  }
  disk_.RestoreStats(snapshot);
  return out;
}

void NetworkFile::EnableLazyReorganization(int threshold) {
  lazy_threshold_ = threshold > 0 ? threshold : 0;
  update_counts_.clear();
}

void NetworkFile::NoteUpdate(PageId page) {
  if (lazy_threshold_ > 0 && !in_reorg_) {
    ++update_counts_[page];
  }
}

Status NetworkFile::FinishUpdate() {
  if (lazy_threshold_ > 0 && !in_reorg_) {
    // Collect pages whose update counters crossed the threshold.
    std::vector<PageId> due;
    for (const auto& [page, count] : update_counts_) {
      if (count >= lazy_threshold_ && disk_.IsAllocated(page)) {
        due.push_back(page);
      }
    }
    in_reorg_ = true;
    for (PageId page : due) {
      if (!disk_.IsAllocated(page)) continue;  // merged away meanwhile
      std::vector<PageId> touched;
      auto nbrs = NbrPages(page);
      if (nbrs.ok()) touched = std::move(*nbrs);
      touched.push_back(page);
      Status s = Reorganize(touched);
      if (!s.ok()) {
        in_reorg_ = false;
        return s;
      }
      ++lazy_reorgs_;
      for (PageId p : touched) update_counts_.erase(p);
    }
    in_reorg_ = false;
  }
  return FlushDirty();
}

Status NetworkFile::SaveImage(const std::string& path) {
  CCAM_RETURN_NOT_OK(pool_.FlushAll());
  CCAM_RETURN_NOT_OK(disk_.SaveToFile(path));
  if (HasHierarchy()) {
    // The overlay persists as a sidecar image; a file saved without one
    // simply reopens without CH support until the next build.
    CCAM_RETURN_NOT_OK(hierarchy_->SaveImage(path + ".hier"));
  }
  return Status::OK();
}

Status NetworkFile::OpenImage(const std::string& path) {
  if (!page_of_.empty()) {
    return Status::InvalidArgument("file already created");
  }
  CCAM_RETURN_NOT_OK(disk_.LoadFromFile(path));
  if (options_.durability) {
    // Durable open: replay committed transactions from the image's WAL
    // tail, discard the uncommitted remainder. After this the platter
    // reflects exactly the acknowledged operations.
    CCAM_RETURN_NOT_OK(disk_.Recover());
  }
  CCAM_RETURN_NOT_OK(pool_.Reset());
  // Rebuild the node -> page map and the free-space map by scanning. The
  // image is untrusted (it may be a crash capture): every page is
  // bounds-validated and every record fully decoded before anything is
  // believed, so a torn page surfaces as a typed Corruption, never as an
  // out-of-bounds access.
  std::vector<std::pair<uint64_t, uint64_t>> index_entries;
  for (PageId page : disk_.AllocatedPageIds()) {
    PageGuard guard(&pool_, page);
    if (!guard.ok()) return guard.status();
    // A page allocated by a crashed run but never written back is still
    // all zeroes (no slotted-page header). It holds no records; format it
    // so the free-space map and later writes see a valid empty page.
    std::string_view raw(guard.data(), options_.page_size);
    if (raw.find_first_not_of('\0') == std::string_view::npos) {
      SlottedPage::Initialize(guard.data(), options_.page_size);
      guard.MarkDirty();
      NoteFreeSpace(page, SlottedPage(guard.data(), options_.page_size));
      continue;
    }
    SlottedPage view(guard.data(), options_.page_size);
    Status valid = view.Validate();
    if (!valid.ok()) {
      return Status::Corruption("page " + std::to_string(page) + ": " +
                                valid.message());
    }
    for (int slot : view.LiveSlots()) {
      auto rec = NodeRecord::Decode(view.GetRecord(slot));
      if (!rec.ok() || rec->id == kInvalidNodeId) {
        return Status::Corruption("undecodable record on page " +
                                  std::to_string(page));
      }
      NodeId id = rec->id;
      if (!page_of_.emplace(id, page).second) {
        return Status::Corruption("duplicate node " + std::to_string(id) +
                                  " in image");
      }
      index_entries.emplace_back(id, page);
    }
    NoteFreeSpace(page, view);
  }
  if (index_) {
    std::sort(index_entries.begin(), index_entries.end());
    CCAM_RETURN_NOT_OK(index_->BulkLoad(index_entries));
  }
  if (options_.durability) {
    // A durable open promises a consistent graph, not just decodable
    // pages: recovery must leave no dangling or asymmetric adjacency.
    CCAM_RETURN_NOT_OK(CheckGraphInvariants());
  }
  if (options_.hierarchy_overlay) {
    // Reattach the overlay sidecar, if one was saved beside the image. A
    // missing or empty sidecar just means no overlay (e.g. the image was
    // saved after a mutation invalidated it); corruption propagates.
    auto overlay = std::make_unique<HierarchyOverlay>(options_);
    overlay->SetFaultInjector(faults_);
    overlay->SetMetrics(metrics_);
    Result<bool> loaded = overlay->LoadImage(path + ".hier");
    if (!loaded.ok()) return loaded.status();
    if (*loaded) hierarchy_ = std::move(overlay);
  }
  disk_.ResetStats();
  if (index_disk_) index_disk_->ResetStats();
  return Status::OK();
}

Status NetworkFile::HandleUnderflow(PageId home,
                                    const std::vector<PageId>& nbr_pages) {
  std::vector<NodeRecord> remaining;
  CCAM_ASSIGN_OR_RETURN(remaining, RecordsOnPage(home));
  if (remaining.empty()) {
    last_op_structural_ = true;
    return DropDataPage(home);
  }
  size_t used = 0;
  for (const NodeRecord& r : remaining) {
    used += r.EncodedSize() + SlottedPage::kSlotOverhead;
  }
  if (used < PageCapacity() / 2) {
    for (PageId q : nbr_pages) {
      if (q != home && disk_.IsAllocated(q)) {
        return MergePages(home, q);
      }
    }
  }
  return Status::OK();
}

Status NetworkFile::MergePages(PageId p, PageId q) {
  last_op_structural_ = true;
  std::vector<NodeRecord> p_records, q_records;
  CCAM_ASSIGN_OR_RETURN(p_records, RecordsOnPage(p));
  CCAM_ASSIGN_OR_RETURN(q_records, RecordsOnPage(q));
  size_t bytes = 0;
  for (const NodeRecord& r : p_records) {
    bytes += r.EncodedSize() + SlottedPage::kSlotOverhead;
  }
  for (const NodeRecord& r : q_records) {
    bytes += r.EncodedSize() + SlottedPage::kSlotOverhead;
  }
  if (bytes <= PageCapacity()) {
    // Everything fits on one page: move p's records into q, free p.
    for (const NodeRecord& rec : p_records) {
      CCAM_RETURN_NOT_OK(AddRecordToPage(q, rec));
    }
    return DropDataPage(p);
  }
  // Recluster the pair into two balanced pages.
  return Reorganize({p, q});
}

Result<NodeRecord> NetworkFile::Find(NodeId id) { return ReadRecord(id); }

Result<NodeRecord> NetworkFile::FindViaIndex(NodeId id) {
  if (!index_) {
    return Status::NotSupported("B+ tree index not maintained");
  }
  PageId page;
  {
    auto res = index_->Find(id);
    if (!res.ok()) return res.status();
    page = static_cast<PageId>(*res);
  }
  PageGuard guard(&pool_, page);
  if (!guard.ok()) return guard.status();
  SlottedPage view(guard.data(), options_.page_size);
  for (int slot : view.LiveSlots()) {
    std::string_view bytes = view.GetRecord(slot);
    if (NodeRecord::PeekId(bytes) == id) {
      return NodeRecord::Decode(bytes);
    }
  }
  return Status::Corruption("index points at a page without the record");
}

Status NetworkFile::BulkInsert(const std::vector<NodeRecord>& records,
                               ReorgPolicy policy) {
  // One transaction for the whole batch: the nested InsertNode scopes are
  // no-ops, so the batch is a single group commit.
  MutationScope txn(this);
  return txn.Finish(BulkInsertImpl(records, policy));
}

Status NetworkFile::BulkInsertImpl(const std::vector<NodeRecord>& records,
                                   ReorgPolicy policy) {
  std::set<PageId> touched;
  for (const NodeRecord& record : records) {
    CCAM_RETURN_NOT_OK(InsertNode(record, ReorgPolicy::kFirstOrder));
    auto it = page_of_.find(record.id);
    if (it != page_of_.end()) {
      touched.insert(it->second);
      auto rec_now = ReadRecord(record.id);
      if (rec_now.ok()) {
        for (PageId p : PagesOfNeighbors(*rec_now)) touched.insert(p);
      }
    }
  }
  if (policy != ReorgPolicy::kFirstOrder) {
    std::vector<PageId> pages;
    for (PageId p : touched) {
      if (!disk_.IsAllocated(p)) continue;
      if (policy == ReorgPolicy::kHigherOrder) {
        auto extra = NbrPages(p);
        if (extra.ok()) {
          for (PageId q : *extra) {
            if (disk_.IsAllocated(q)) pages.push_back(q);
          }
        }
      }
      pages.push_back(p);
    }
    CCAM_RETURN_NOT_OK(Reorganize(std::move(pages)));
  }
  return FinishUpdate();
}

Result<NodeRecord> NetworkFile::GetASuccessor(NodeId from, NodeId to) {
  // The buffered data page containing `from` (and anything else buffered)
  // is searched first by construction: fetching a buffered page performs
  // no disk I/O. A miss degenerates to Find(to), per the paper.
  (void)from;
  return ReadRecord(to);
}

Result<std::vector<NodeRecord>> NetworkFile::GetSuccessors(NodeId id) {
  return GetSuccessorsTracked(id, nullptr);
}

Result<std::vector<NodeRecord>> NetworkFile::GetSuccessorsTracked(
    NodeId id, IoStats* io) {
  NodeRecord rec;
  CCAM_ASSIGN_OR_RETURN(rec, ReadRecord(id, io));
  std::vector<NodeRecord> out(rec.succ.size());
  // Successors co-paged with `id` — or on any page brought into the
  // buffers by earlier fetches — are extracted without further I/O
  // ("checking all pages brought into main memory buffers", Section 2.3).
  // Fetch in page-grouped order so a tiny buffer pool never re-reads a
  // page it just evicted; results return in successor-list order.
  std::vector<size_t> order(rec.succ.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    auto pa = page_of_.find(rec.succ[a].node);
    auto pb = page_of_.find(rec.succ[b].node);
    PageId page_a = pa == page_of_.end() ? kInvalidPageId : pa->second;
    PageId page_b = pb == page_of_.end() ? kInvalidPageId : pb->second;
    return page_a < page_b;
  });
  for (size_t i : order) {
    NodeRecord succ;
    CCAM_ASSIGN_OR_RETURN(succ, ReadRecord(rec.succ[i].node, io));
    out[i] = std::move(succ);
  }
  return out;
}

Result<NodeRecord> NetworkFile::SharedFind(NodeId id, IoStats* io) {
  return ReadRecord(id, io);
}

Result<NodeRecord> NetworkFile::SharedGetASuccessor(NodeId from, NodeId to,
                                                    IoStats* io) {
  // Same degenerate form as GetASuccessor(): the buffered page holding
  // `from` is searched for free by construction.
  (void)from;
  return ReadRecord(to, io);
}

Result<std::vector<NodeRecord>> NetworkFile::SharedGetSuccessors(NodeId id,
                                                                 IoStats* io) {
  return GetSuccessorsTracked(id, io);
}

std::unique_ptr<QuerySession> NetworkFile::OpenSession() {
  return std::make_unique<QuerySession>(this);
}

Result<HierarchyNodeRecord> NetworkFile::SharedHierarchyNode(NodeId id,
                                                             IoStats* io) {
  if (!HasHierarchy()) {
    return Status::NotSupported("no hierarchy overlay");
  }
  return hierarchy_->ReadNode(id, io);
}

Status NetworkFile::BuildHierarchyOverlayFromNetwork(const Network& network) {
  auto overlay = std::make_unique<HierarchyOverlay>(options_);
  overlay->SetFaultInjector(faults_);
  overlay->SetMetrics(metrics_);
  CCAM_RETURN_NOT_OK(overlay->Build(network));
  hierarchy_ = std::move(overlay);
  return Status::OK();
}

Status NetworkFile::BuildHierarchyOverlay() {
  // Reconstruct the logical network by scanning every data page. The scan
  // reads through the pool like any query, but a rebuild is maintenance,
  // not workload: its reads are excluded from the data I/O counters.
  IoStats before = disk_.stats();
  std::vector<NodeRecord> all;
  Status scan = Status::OK();
  for (PageId page : disk_.AllocatedPageIds()) {
    auto records = RecordsOnPage(page);
    if (!records.ok()) {
      scan = records.status();
      break;
    }
    for (NodeRecord& rec : *records) all.push_back(std::move(rec));
  }
  disk_.RestoreStats(before);
  CCAM_RETURN_NOT_OK(scan);
  return BuildHierarchyOverlayFromNetwork(NetworkFromRecords(all));
}

Result<Network> NetworkFile::ExportNetwork() {
  IoStats before = disk_.stats();
  std::vector<NodeRecord> all;
  Status scan = Status::OK();
  std::vector<PageId> pages = disk_.AllocatedPageIds();
  std::sort(pages.begin(), pages.end());
  for (PageId page : pages) {
    auto records = RecordsOnPage(page);
    if (!records.ok()) {
      scan = records.status();
      break;
    }
    for (NodeRecord& rec : *records) all.push_back(std::move(rec));
  }
  disk_.RestoreStats(before);
  CCAM_RETURN_NOT_OK(scan);
  Network net;
  for (const NodeRecord& rec : all) {
    Status st = net.AddNode(rec.id, rec.x, rec.y, rec.payload);
    if (!st.ok()) {
      return Status::Corruption("export: duplicate node " +
                                std::to_string(rec.id));
    }
  }
  for (const NodeRecord& rec : all) {
    for (const AdjEntry& e : rec.succ) {
      Status st = net.AddEdge(rec.id, e.node, e.cost);
      if (!st.ok()) {
        return Status::Corruption("export: bad edge " + std::to_string(rec.id) +
                                  "->" + std::to_string(e.node) + ": " +
                                  st.ToString());
      }
    }
  }
  return net;
}

Status NetworkFile::InsertNode(const NodeRecord& record, ReorgPolicy policy) {
  MutationScope txn(this);
  return txn.Finish(InsertNodeImpl(record, policy));
}

Status NetworkFile::InsertNodeImpl(const NodeRecord& record,
                                   ReorgPolicy policy) {
  last_op_structural_ = false;
  if (page_of_.count(record.id) > 0) {
    return Status::AlreadyExists("node " + std::to_string(record.id));
  }
  // Keep only adjacency entries whose endpoint is present; absent nodes
  // patch this record back when they are inserted later.
  NodeRecord rec = record;
  auto present = [&](const AdjEntry& e) {
    return page_of_.count(e.node) > 0;
  };
  rec.succ.erase(
      std::remove_if(rec.succ.begin(), rec.succ.end(),
                     [&](const AdjEntry& e) { return !present(e); }),
      rec.succ.end());
  rec.pred.erase(
      std::remove_if(rec.pred.begin(), rec.pred.end(),
                     [&](const AdjEntry& e) { return !present(e); }),
      rec.pred.end());
  if (rec.EncodedSize() + SlottedPage::kSlotOverhead > PageCapacity()) {
    return Status::NoSpace("record larger than a page");
  }

  // Update the succ-list and pred-list of the neighbors (paper Figure 3):
  // an edge (u, x) adds x to u's successor-list; an edge (x, v) adds x to
  // v's predecessor-list. Each neighbor page is read and written once.
  std::map<NodeId, float> succ_add;  // nbr gains x in its succ-list
  std::map<NodeId, float> pred_add;  // nbr gains x in its pred-list
  for (const AdjEntry& e : rec.pred) succ_add[e.node] = e.cost;
  for (const AdjEntry& e : rec.succ) pred_add[e.node] = e.cost;
  std::set<NodeId> nbrs;
  for (const auto& [nbr_id, cost] : succ_add) nbrs.insert(nbr_id);
  for (const auto& [nbr_id, cost] : pred_add) nbrs.insert(nbr_id);
  std::vector<NodeId> patched;
  auto unpatch = [&]() {
    // Undo neighbor patches so a failed insert is all-or-nothing.
    for (NodeId nbr : patched) {
      auto nrec = ReadRecord(nbr);
      if (!nrec.ok()) continue;
      NodeId x = rec.id;
      auto drop = [x](std::vector<AdjEntry>* list) {
        list->erase(std::remove_if(
                        list->begin(), list->end(),
                        [x](const AdjEntry& e) { return e.node == x; }),
                    list->end());
      };
      drop(&nrec->succ);
      drop(&nrec->pred);
      (void)WriteRecord(*nrec);
    }
    (void)FlushDirty();
  };
  for (NodeId nbr : nbrs) {
    auto nrec = ReadRecord(nbr);
    if (!nrec.ok()) {
      unpatch();
      return nrec.status();
    }
    auto sit = succ_add.find(nbr);
    if (sit != succ_add.end() && !nrec->HasSuccessor(rec.id)) {
      nrec->succ.push_back({rec.id, sit->second});
    }
    auto pit = pred_add.find(nbr);
    if (pit != pred_add.end() && !nrec->HasPredecessor(rec.id)) {
      nrec->pred.push_back({rec.id, pit->second});
    }
    Status ws = WriteRecord(*nrec);
    if (!ws.ok()) {
      unpatch();
      return ws;
    }
    patched.push_back(nbr);
  }

  // Select the page to hold the new record.
  PageId target = ChoosePageForInsert(rec);
  if (target == kInvalidPageId) {
    CCAM_ASSIGN_OR_RETURN(target, NewDataPage());
  }
  CCAM_RETURN_NOT_OK(AddRecordToPage(target, rec));
  OnRecordPlaced(rec.id, target);

  if (policy != ReorgPolicy::kFirstOrder) {
    std::vector<PageId> touched = PagesOfNeighbors(rec);
    touched.push_back(page_of_.at(rec.id));
    if (policy == ReorgPolicy::kHigherOrder) {
      std::vector<PageId> extra;
      CCAM_ASSIGN_OR_RETURN(extra, NbrPages(page_of_.at(rec.id)));
      touched.insert(touched.end(), extra.begin(), extra.end());
    }
    CCAM_RETURN_NOT_OK(ReorganizeForPolicy(policy, std::move(touched)));
  }
  return FinishUpdate();
}

Status NetworkFile::DeleteNode(NodeId id, ReorgPolicy policy) {
  MutationScope txn(this);
  return txn.Finish(DeleteNodeImpl(id, policy));
}

Status NetworkFile::DeleteNodeImpl(NodeId id, ReorgPolicy policy) {
  last_op_structural_ = false;
  NodeRecord rec;
  CCAM_ASSIGN_OR_RETURN(rec, ReadRecord(id));
  PageId home = page_of_.at(id);
  std::vector<PageId> nbr_pages = PagesOfNeighbors(rec);

  // Patch the neighbors' lists.
  for (NodeId nbr : rec.Neighbors()) {
    if (page_of_.count(nbr) == 0) continue;
    NodeRecord nrec;
    CCAM_ASSIGN_OR_RETURN(nrec, ReadRecord(nbr));
    auto drop = [id](std::vector<AdjEntry>* list) {
      list->erase(std::remove_if(
                      list->begin(), list->end(),
                      [id](const AdjEntry& e) { return e.node == id; }),
                  list->end());
    };
    drop(&nrec.succ);
    drop(&nrec.pred);
    CCAM_RETURN_NOT_OK(WriteRecord(nrec));
  }

  CCAM_RETURN_NOT_OK(RemoveRecordFromPage(id));

  if (policy == ReorgPolicy::kFirstOrder) {
    CCAM_RETURN_NOT_OK(HandleUnderflow(home, nbr_pages));
  } else {
    std::vector<PageId> touched = nbr_pages;
    touched.push_back(home);
    if (policy == ReorgPolicy::kHigherOrder && disk_.IsAllocated(home)) {
      auto remaining = NodesOnPage(home);
      if (remaining.ok() && !remaining->empty()) {
        std::vector<PageId> extra;
        CCAM_ASSIGN_OR_RETURN(extra, NbrPages(home));
        touched.insert(touched.end(), extra.begin(), extra.end());
      }
    }
    // Drop pages that became empty before reorganizing.
    std::vector<PageId> live;
    for (PageId p : touched) {
      if (!disk_.IsAllocated(p)) continue;
      auto nodes = NodesOnPage(p);
      if (nodes.ok() && nodes->empty()) {
        CCAM_RETURN_NOT_OK(DropDataPage(p));
      } else {
        live.push_back(p);
      }
    }
    CCAM_RETURN_NOT_OK(ReorganizeForPolicy(policy, std::move(live)));
  }
  return FinishUpdate();
}

Status NetworkFile::InsertEdge(NodeId u, NodeId v, float cost,
                               ReorgPolicy policy) {
  MutationScope txn(this);
  return txn.Finish(InsertEdgeImpl(u, v, cost, policy));
}

Status NetworkFile::InsertEdgeImpl(NodeId u, NodeId v, float cost,
                                   ReorgPolicy policy) {
  last_op_structural_ = false;
  if (u == v) return Status::InvalidArgument("self-loop");
  NodeRecord ru, rv;
  CCAM_ASSIGN_OR_RETURN(ru, ReadRecord(u));
  if (ru.HasSuccessor(v)) {
    return Status::AlreadyExists("edge already present");
  }
  if (page_of_.count(v) == 0) {
    return Status::NotFound("node " + std::to_string(v));
  }
  ru.succ.push_back({v, cost});
  CCAM_RETURN_NOT_OK(WriteRecord(ru));
  CCAM_ASSIGN_OR_RETURN(rv, ReadRecord(v));
  rv.pred.push_back({u, cost});
  Status sv = WriteRecord(rv);
  if (!sv.ok()) {
    // Roll back u's successor entry so the edge is all-or-nothing.
    auto ru_now = ReadRecord(u);
    if (ru_now.ok()) {
      ru_now->succ.erase(
          std::remove_if(ru_now->succ.begin(), ru_now->succ.end(),
                         [v](const AdjEntry& e) { return e.node == v; }),
          ru_now->succ.end());
      (void)WriteRecord(*ru_now);
    }
    (void)FlushDirty();
    return sv;
  }

  if (policy != ReorgPolicy::kFirstOrder) {
    std::vector<PageId> touched{page_of_.at(u), page_of_.at(v)};
    if (policy == ReorgPolicy::kHigherOrder) {
      for (PageId p : {page_of_.at(u), page_of_.at(v)}) {
        std::vector<PageId> extra;
        CCAM_ASSIGN_OR_RETURN(extra, NbrPages(p));
        touched.insert(touched.end(), extra.begin(), extra.end());
      }
    }
    CCAM_RETURN_NOT_OK(ReorganizeForPolicy(policy, std::move(touched)));
  }
  return FinishUpdate();
}

Status NetworkFile::DeleteEdge(NodeId u, NodeId v, ReorgPolicy policy) {
  MutationScope txn(this);
  return txn.Finish(DeleteEdgeImpl(u, v, policy));
}

Status NetworkFile::DeleteEdgeImpl(NodeId u, NodeId v, ReorgPolicy policy) {
  last_op_structural_ = false;
  NodeRecord ru, rv;
  CCAM_ASSIGN_OR_RETURN(ru, ReadRecord(u));
  if (!ru.HasSuccessor(v)) {
    return Status::NotFound("edge not present");
  }
  ru.succ.erase(std::remove_if(ru.succ.begin(), ru.succ.end(),
                               [v](const AdjEntry& e) { return e.node == v; }),
                ru.succ.end());
  CCAM_RETURN_NOT_OK(WriteRecord(ru));
  CCAM_ASSIGN_OR_RETURN(rv, ReadRecord(v));
  rv.pred.erase(std::remove_if(rv.pred.begin(), rv.pred.end(),
                               [u](const AdjEntry& e) { return e.node == u; }),
                rv.pred.end());
  CCAM_RETURN_NOT_OK(WriteRecord(rv));

  if (policy != ReorgPolicy::kFirstOrder) {
    std::vector<PageId> touched{page_of_.at(u), page_of_.at(v)};
    if (policy == ReorgPolicy::kHigherOrder) {
      for (PageId p : {page_of_.at(u), page_of_.at(v)}) {
        std::vector<PageId> extra;
        CCAM_ASSIGN_OR_RETURN(extra, NbrPages(p));
        touched.insert(touched.end(), extra.begin(), extra.end());
      }
    }
    CCAM_RETURN_NOT_OK(ReorganizeForPolicy(policy, std::move(touched)));
  }
  return FinishUpdate();
}

Status NetworkFile::CheckFileInvariants() {
  // Every mapped node must be present exactly once on its page.
  std::unordered_map<NodeId, int> seen;
  for (PageId page : disk_.AllocatedPageIds()) {
    std::vector<NodeRecord> records;
    CCAM_ASSIGN_OR_RETURN(records, RecordsOnPage(page));
    for (const NodeRecord& rec : records) {
      auto it = page_of_.find(rec.id);
      if (it == page_of_.end()) {
        return Status::Corruption("orphan record " + std::to_string(rec.id));
      }
      if (it->second != page) {
        return Status::Corruption("record " + std::to_string(rec.id) +
                                  " on wrong page");
      }
      if (++seen[rec.id] > 1) {
        return Status::Corruption("duplicate record " +
                                  std::to_string(rec.id));
      }
    }
  }
  if (seen.size() != page_of_.size()) {
    return Status::Corruption("page map size mismatch");
  }
  if (index_) {
    CCAM_RETURN_NOT_OK(index_->CheckInvariants());
    if (index_->NumEntries() != page_of_.size()) {
      return Status::Corruption("index entry count mismatch");
    }
    for (const auto& [id, page] : page_of_) {
      auto res = index_->Find(id);
      if (!res.ok()) return res.status();
      if (*res != page) {
        return Status::Corruption("index disagrees for node " +
                                  std::to_string(id));
      }
    }
  }
  return Status::OK();
}

Status NetworkFile::CheckGraphInvariants() {
  // Load every stored record, then check that adjacency forms a closed,
  // symmetric graph: no edge endpoint may dangle, and each directed edge
  // (u, v, cost) must appear both in u's successor-list and in v's
  // predecessor-list with the same cost.
  std::unordered_map<NodeId, NodeRecord> nodes;
  for (PageId page : disk_.AllocatedPageIds()) {
    std::vector<NodeRecord> records;
    CCAM_ASSIGN_OR_RETURN(records, RecordsOnPage(page));
    for (NodeRecord& rec : records) {
      NodeId id = rec.id;
      if (!nodes.emplace(id, std::move(rec)).second) {
        return Status::Corruption("duplicate node " + std::to_string(id));
      }
    }
  }
  for (const auto& [id, rec] : nodes) {
    for (const AdjEntry& e : rec.succ) {
      auto it = nodes.find(e.node);
      if (it == nodes.end()) {
        return Status::Corruption("successor edge " + std::to_string(id) +
                                  " -> " + std::to_string(e.node) +
                                  " dangles");
      }
      if (!it->second.HasPredecessor(id)) {
        return Status::Corruption("edge " + std::to_string(id) + " -> " +
                                  std::to_string(e.node) +
                                  " missing from predecessor-list");
      }
    }
    for (const AdjEntry& e : rec.pred) {
      auto it = nodes.find(e.node);
      if (it == nodes.end()) {
        return Status::Corruption("predecessor edge " + std::to_string(e.node) +
                                  " -> " + std::to_string(id) + " dangles");
      }
      auto cost = it->second.SuccessorCost(id);
      if (!cost.ok()) {
        return Status::Corruption("edge " + std::to_string(e.node) + " -> " +
                                  std::to_string(id) +
                                  " missing from successor-list");
      }
      if (*cost != e.cost) {
        return Status::Corruption("edge " + std::to_string(e.node) + " -> " +
                                  std::to_string(id) + " cost mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace ccam
