#include "src/core/reorg.h"

namespace ccam {

PageAccessGraph PageAccessGraph::Build(const Network& network,
                                       const NodePageMap& page_of) {
  PageAccessGraph pag;
  for (const auto& [node, page] : page_of) {
    pag.adjacency_.try_emplace(page);
  }
  for (const auto& e : network.Edges()) {
    auto u = page_of.find(e.from);
    auto v = page_of.find(e.to);
    if (u == page_of.end() || v == page_of.end()) continue;
    if (u->second == v->second) continue;
    pag.adjacency_[u->second].insert(v->second);
    pag.adjacency_[v->second].insert(u->second);
  }
  return pag;
}

bool PageAccessGraph::IsNeighborPage(PageId p, PageId q) const {
  auto it = adjacency_.find(p);
  return it != adjacency_.end() && it->second.count(q) > 0;
}

std::vector<PageId> PageAccessGraph::NbrPages(PageId p) const {
  auto it = adjacency_.find(p);
  if (it == adjacency_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<PageId> PageAccessGraph::Pages() const {
  std::set<PageId> out;
  for (const auto& [page, nbrs] : adjacency_) out.insert(page);
  return {out.begin(), out.end()};
}

size_t PageAccessGraph::NumEdges() const {
  size_t total = 0;
  for (const auto& [page, nbrs] : adjacency_) total += nbrs.size();
  return total / 2;
}

double PageAccessGraph::AvgDegree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(NumEdges()) /
         static_cast<double>(adjacency_.size());
}

std::vector<PageId> PagesOfNbrs(const Network& network, NodeId x,
                                const NodePageMap& page_of) {
  std::set<PageId> out;
  for (NodeId nbr : network.Neighbors(x)) {
    auto it = page_of.find(nbr);
    if (it != page_of.end()) out.insert(it->second);
  }
  return {out.begin(), out.end()};
}

}  // namespace ccam
