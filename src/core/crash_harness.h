#ifndef CCAM_CORE_CRASH_HARNESS_H_
#define CCAM_CORE_CRASH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/ccam.h"

namespace ccam {

/// Deterministic crash-consistency driver shared by
/// tests/crash_consistency_test and tools/crashsim.
///
/// A run builds a CCAM file from a seeded geometric network, then applies a
/// seeded stream of mixed Insert-node / Delete-node / Insert-edge /
/// Delete-edge operations. With a `disk.write=crash:<bytes>@<k>` fault
/// armed, the k-th page write tears after <bytes> bytes and halts the
/// simulated device — modelling a power cut mid-write. The harness then
/// captures the platter state (dirty buffer-pool frames are deliberately
/// lost: they never reached disk), reopens the image with a fresh instance
/// and classifies the result. The workload is a pure function of the seed,
/// so the same (seed, crash point) always produces the same crash and the
/// same recovered image, byte for byte.
struct CrashSimOptions {
  uint64_t seed = 1995;
  size_t page_size = 1024;
  size_t buffer_pool_pages = 8;
  ReorgPolicy policy = ReorgPolicy::kSecondOrder;
  /// Nodes of the initial network the static create builds.
  int initial_nodes = 48;
  /// Mixed maintenance operations applied after create.
  int ops = 120;
  /// Bytes of the crashing write that reach the platter (the torn prefix).
  int torn_bytes = 96;
  /// Where the crash capture image is written. Required.
  std::string image_path;
};

enum class CrashOutcome {
  /// The workload completed before the scheduled write boundary.
  kNoCrash,
  /// Reopen succeeded and file + graph invariants all hold.
  kRecovered,
  /// Reopen (or an invariant check) failed with a clean typed Status —
  /// the torn state was *detected*, never silently accepted.
  kCorruptionDetected,
};

const char* CrashOutcomeName(CrashOutcome outcome);

struct CrashRunResult {
  CrashOutcome outcome = CrashOutcome::kNoCrash;
  /// Status message of the detection, empty when recovered.
  std::string detail;
  /// Page writes that fully completed before the device halted.
  uint64_t writes_before_crash = 0;
  /// Nodes visible after a successful reopen.
  size_t recovered_nodes = 0;
};

struct CrashPointReport {
  uint64_t crash_point = 0;  // 1-based index into the write sequence
  CrashRunResult result;
};

struct CrashSimReport {
  /// Page writes the fault-free workload performs (the crash-point space).
  uint64_t total_writes = 0;
  std::vector<CrashPointReport> points;
  size_t recovered = 0;
  size_t corruption_detected = 0;
  size_t no_crash = 0;
};

/// Runs the seeded workload fault-free and returns the number of page
/// writes it performs — the size of the crash-point space.
Result<uint64_t> CountWorkloadWrites(const CrashSimOptions& options);

/// Runs the workload with a crash scheduled at the `crash_point`-th page
/// write (1-based), captures the platter, reopens and verifies. Returns an
/// error only on harness-level failures (e.g. the capture file cannot be
/// written); torn data is reported via the outcome, not as an error.
Result<CrashRunResult> RunCrashOnce(const CrashSimOptions& options,
                                    uint64_t crash_point);

/// Sweeps `num_points` crash points spread evenly over the write sequence
/// (all of them when `num_points` >= total writes).
Result<CrashSimReport> RunCrashSim(const CrashSimOptions& options,
                                   uint64_t num_points);

}  // namespace ccam

#endif  // CCAM_CORE_CRASH_HARNESS_H_
