#ifndef CCAM_CORE_CRASH_HARNESS_H_
#define CCAM_CORE_CRASH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/ccam.h"

namespace ccam {

/// Deterministic crash-consistency driver shared by
/// tests/crash_consistency_test and tools/crashsim.
///
/// A run builds a CCAM file from a seeded geometric network, then applies a
/// seeded stream of mixed Insert-node / Delete-node / Insert-edge /
/// Delete-edge operations. With a `<failpoint>=crash:<bytes>@<k>` fault
/// armed, the k-th evaluation of that failpoint tears after <bytes> bytes
/// and halts the simulated device — modelling a power cut mid-I/O. The
/// harness then captures the platter state (dirty buffer-pool frames are
/// deliberately lost: they never reached disk), reopens the image with a
/// fresh instance and classifies the result. The workload is a pure
/// function of the seed, so the same (seed, crash point) always produces
/// the same crash and the same recovered image, byte for byte.
///
/// Two verification criteria:
///  - detect-only (durability off): reopen either succeeds with all
///    invariants holding, or fails with a clean typed Status. Matches the
///    read-only recovery guarantee of the plain file format.
///  - strict (durability on): recovery MUST succeed, and the recovered
///    file must contain exactly the operations acknowledged before the
///    crash — plus, at most, the single operation in flight when the
///    device died, applied atomically. Recovery replay must also be
///    deterministic: reopening the same captured image twice yields
///    byte-identical recovered images.
struct CrashSimOptions {
  uint64_t seed = 1995;
  size_t page_size = 1024;
  size_t buffer_pool_pages = 8;
  ReorgPolicy policy = ReorgPolicy::kSecondOrder;
  /// Nodes of the initial network the static create builds.
  int initial_nodes = 48;
  /// Mixed maintenance operations applied after create.
  int ops = 120;
  /// Bytes of the crashing write that reach the platter (the torn prefix).
  int torn_bytes = 96;
  /// Run with write-ahead logging on and verify the strict criterion.
  bool durability = false;
  /// Failpoint the kill is scheduled on. "disk.write" kills inside data
  /// page writes; with durability on, "wal.append" and "wal.flush" kill
  /// inside the logging protocol itself.
  std::string crash_failpoint = "disk.write";
  /// Where the crash capture image is written. Required.
  std::string image_path;
};

enum class CrashOutcome {
  /// The workload completed before the scheduled kill point.
  kNoCrash,
  /// Detect-only: reopen succeeded and file + graph invariants all hold.
  kRecovered,
  /// Detect-only: reopen (or an invariant check) failed with a clean typed
  /// Status — the torn state was *detected*, never silently accepted.
  kCorruptionDetected,
  /// Strict: recovery succeeded, invariants hold, and the recovered state
  /// is exactly the acked prefix (or acked prefix + in-flight op).
  kDurable,
  /// Strict failure: an acknowledged operation is missing from the
  /// recovered file, or an operation past the in-flight one is present.
  kLostAck,
  /// Strict failure: recovery errored, an invariant failed, or replaying
  /// the same captured image twice produced different bytes.
  kRecoveryFailed,
};

const char* CrashOutcomeName(CrashOutcome outcome);

struct CrashRunResult {
  CrashOutcome outcome = CrashOutcome::kNoCrash;
  /// Status message of the detection/failure, empty when recovered.
  std::string detail;
  /// Page writes that fully completed before the device halted.
  uint64_t writes_before_crash = 0;
  /// Nodes visible after a successful reopen.
  size_t recovered_nodes = 0;
  /// CRC32C of the recovered image bytes (strict mode only). Equal crcs
  /// across runs of the same (seed, crash point) certify byte-identical
  /// recovery.
  uint32_t recovered_image_crc = 0;
};

struct CrashPointReport {
  uint64_t crash_point = 0;  // 1-based index into the failpoint hits
  CrashRunResult result;
};

struct CrashSimReport {
  /// Evaluations of `crash_failpoint` in the fault-free workload (the
  /// kill-point space).
  uint64_t total_writes = 0;
  std::vector<CrashPointReport> points;
  size_t recovered = 0;
  size_t corruption_detected = 0;
  size_t no_crash = 0;
  size_t durable = 0;
  size_t lost_ack = 0;
  size_t recovery_failed = 0;

  /// Kill points whose outcome violates the active criterion. In strict
  /// mode only kDurable passes; detect-only accepts kRecovered and
  /// kCorruptionDetected. kNoCrash always fails: the scheduled kill never
  /// fired, so the point tested nothing.
  size_t failures() const { return no_crash + lost_ack + recovery_failed; }
};

/// Runs the seeded workload fault-free and returns how many times
/// `options.crash_failpoint` is evaluated — the size of the kill-point
/// space for that failpoint.
Result<uint64_t> CountWorkloadWrites(const CrashSimOptions& options);

/// Runs the workload with a crash scheduled at the `crash_point`-th
/// evaluation of the configured failpoint (1-based), captures the platter,
/// reopens and verifies. Returns an error only on harness-level failures
/// (e.g. the capture file cannot be written); torn data is reported via
/// the outcome, not as an error.
Result<CrashRunResult> RunCrashOnce(const CrashSimOptions& options,
                                    uint64_t crash_point);

/// Sweeps `num_points` crash points spread evenly over the kill-point
/// space (all of them when `num_points` >= total).
Result<CrashSimReport> RunCrashSim(const CrashSimOptions& options,
                                   uint64_t num_points);

/// ---------------------------------------------------------------------------
/// Snapshot-store crash sweep (the versioned-swap reorganization protocol).
///
/// Same contract as the plain-file sweep, but the system under test is a
/// SnapshotManager: a seeded mutation stream with a synchronous
/// ReorganizeNow() every `reorg_every` acknowledged mutations, killed at the
/// k-th evaluation of one of the "snapshot.*" failpoints
/// (snapshot.log.append, snapshot.log.flush, snapshot.build,
/// snapshot.publish, snapshot.retire). The kill leaves the torn on-disk
/// shape of that instant — a torn log frame, a stray build image, a torn
/// MANIFEST.tmp, a half-compacted delta log — and the harness reopens the
/// directory with SnapshotManager::Open.
///
/// Always strict: the delta log *is* the store's durability mechanism, so
/// recovery must succeed and land on exactly the acknowledged stream (plus,
/// at most, the one mutation in flight when the store halted). Because a
/// reorganization does not change the logical network, that criterion is
/// precisely "exactly the old version or exactly the new version, never a
/// blend": a recovered state mixing pre- and post-swap pages would fail
/// CheckConsistency() or diverge from the mirror. Recovery is also checked
/// to be idempotent — a second Open of the recovered directory yields the
/// same network and next lsn.
struct SnapshotCrashOptions {
  uint64_t seed = 1995;
  size_t page_size = 1024;
  size_t buffer_pool_pages = 8;
  /// Nodes of the initial network the store is created from.
  int initial_nodes = 48;
  /// Mutations applied after create (the kill-point space scales with
  /// these and with the reorganizations they trigger).
  int ops = 120;
  /// Synchronous ReorganizeNow() after every this-many acked mutations
  /// (0 disables reorganization — pure log-path sweep).
  int reorg_every = 10;
  /// Bytes of the crashing write that reach disk (the torn prefix).
  int torn_bytes = 96;
  /// Which "snapshot.*" failpoint the kill is scheduled on.
  std::string crash_failpoint = "snapshot.publish";
  /// Store directory; wiped and recreated by every run. Required.
  std::string dir;
};

/// Fault-free run: returns how many times `options.crash_failpoint` is
/// evaluated — the kill-point space of the snapshot protocol for that site.
Result<uint64_t> CountSnapshotKillPoints(const SnapshotCrashOptions& options);

/// Runs the snapshot workload with a crash at the `crash_point`-th
/// evaluation of the configured failpoint, reopens the store directory and
/// classifies against the strict criterion (kDurable / kLostAck /
/// kRecoveryFailed / kNoCrash).
Result<CrashRunResult> RunSnapshotCrashOnce(const SnapshotCrashOptions& options,
                                            uint64_t crash_point);

/// Sweeps `num_points` kill points spread evenly over the space (all of
/// them when `num_points` >= total). Reuses CrashSimReport;
/// `total_writes` holds the kill-point count.
Result<CrashSimReport> RunSnapshotCrashSim(const SnapshotCrashOptions& options,
                                           uint64_t num_points);

}  // namespace ccam

#endif  // CCAM_CORE_CRASH_HARNESS_H_
