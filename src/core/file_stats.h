#ifndef CCAM_CORE_FILE_STATS_H_
#define CCAM_CORE_FILE_STATS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/network_file.h"
#include "src/graph/network.h"

namespace ccam {

/// Diagnostic snapshot of a network file's physical organization — the
/// quantities the paper's analysis revolves around (CRR/WCRR, blocking
/// factor gamma, page fill, PAG degree), gathered in one pass.
struct FileStats {
  size_t num_nodes = 0;
  size_t num_pages = 0;
  double crr = 0.0;
  double wcrr = 0.0;
  /// gamma: average records per page.
  double blocking_factor = 0.0;
  /// Mean fraction of the page capacity holding live record bytes.
  double avg_fill = 0.0;
  double min_fill = 0.0;
  double max_fill = 0.0;
  /// Pages below the half-full maintenance target.
  size_t underfull_pages = 0;
  /// Average degree of the page access graph.
  double pag_avg_degree = 0.0;
  /// Provable upper bound on the CRR any assignment could achieve at this
  /// page capacity (see CrrUpperBound); crr / crr_upper_bound tells how
  /// close the clustering is to the structural optimum.
  double crr_upper_bound = 1.0;
  /// Histogram of records-per-page (index = record count, capped at 31).
  std::vector<size_t> records_per_page_histogram;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Collects the statistics of `file` against the logical `network` (used
/// for CRR/WCRR/PAG; pass the network the file currently stores). Reads
/// every page once; the scan's I/O is excluded from the file's counters.
Result<FileStats> CollectFileStats(NetworkFile* file,
                                   const Network& network);

}  // namespace ccam

#endif  // CCAM_CORE_FILE_STATS_H_
