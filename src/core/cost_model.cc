#include "src/core/cost_model.h"

namespace ccam {

CostModelParams MeasureCostModelParams(const Network& network,
                                       const AccessMethod& am) {
  CostModelParams p;
  p.alpha = ComputeCrr(network, am.PageMap());
  p.avg_succ = network.AvgOutDegree();
  p.lambda = network.AvgNeighborListSize();
  size_t pages = am.NumDataPages();
  p.gamma = pages == 0 ? 0.0
                       : static_cast<double>(network.NumNodes()) /
                             static_cast<double>(pages);
  return p;
}

double PredictedGetSuccessorsCost(const CostModelParams& p) {
  return (1.0 - p.alpha) * p.avg_succ;
}

double PredictedGetASuccessorCost(const CostModelParams& p) {
  return 1.0 - p.alpha;
}

double PredictedRouteEvaluationCost(const CostModelParams& p, int length) {
  if (length <= 0) return 0.0;
  return 1.0 + (length - 1) * (1.0 - p.alpha);
}

double PredictedInsertReadCost(const CostModelParams& p,
                               ReorgPolicy policy) {
  switch (policy) {
    case ReorgPolicy::kFirstOrder:
    case ReorgPolicy::kSecondOrder:
      return p.lambda;
    case ReorgPolicy::kHigherOrder:
      return p.lambda + p.gamma * p.lambda * (1.0 - p.alpha);
  }
  return p.lambda;
}

double PredictedDeleteReadCost(const CostModelParams& p,
                               ReorgPolicy policy) {
  switch (policy) {
    case ReorgPolicy::kFirstOrder:
    case ReorgPolicy::kSecondOrder:
      return 1.0 + p.lambda * (1.0 - p.alpha);
    case ReorgPolicy::kHigherOrder:
      return p.gamma * p.lambda * (1.0 - p.alpha);
  }
  return 1.0 + p.lambda * (1.0 - p.alpha);
}

double PredictedDeleteAccesses(const CostModelParams& p,
                               ReorgPolicy policy) {
  return 2.0 * PredictedDeleteReadCost(p, policy);
}

}  // namespace ccam
