#ifndef CCAM_CORE_HIERARCHY_OVERLAY_H_
#define CCAM_CORE_HIERARCHY_OVERLAY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/core/access_method.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/hierarchy_record.h"
#include "src/storage/wal.h"

namespace ccam {

/// A contraction-hierarchy overlay persisted as a paged structure beside
/// the data file: its own simulated disk (failpoint/metric prefix "hier"),
/// its own buffer pool, and — when durability is on — its own write-ahead
/// log ("hier.wal.*"), so overlay I/O is accounted exactly like data-page
/// I/O but never mixes into the paper's data counters.
///
/// Build() derives a nested-dissection elimination order from the
/// recursive-bisection partitioner, contracts nodes in that order with
/// witness-search shortcut pruning (witness searches of one contraction
/// step run on the ThreadPool; the result is bit-identical for any thread
/// count), and packs one HierarchyNodeRecord per node into slotted pages
/// in descending rank order — the top of the hierarchy, which every query
/// touches, occupies the fewest, hottest pages. Page 0 holds only the
/// metadata record, written last: an image without a decodable metadata
/// record is "no overlay", never a half-trusted one. With durability on
/// the whole build is one staged transaction on the overlay disk, so a
/// crash mid-build recovers to either no overlay or a fully valid one.
///
/// The overlay's page size is the file's page size, doubled as needed so
/// the widest record (a top separator's shortcut clique) fits one page.
class HierarchyOverlay {
 public:
  /// Build summary, for benches and tests.
  struct BuildInfo {
    size_t nodes = 0;
    size_t shortcuts = 0;  // added arcs beyond the original edges
    size_t pages = 0;      // including the metadata page
    size_t page_size = 0;
    size_t max_record_bytes = 0;
  };

  explicit HierarchyOverlay(const AccessMethodOptions& options);
  ~HierarchyOverlay();

  HierarchyOverlay(const HierarchyOverlay&) = delete;
  HierarchyOverlay& operator=(const HierarchyOverlay&) = delete;

  /// Attaches the fault injector / metrics registry; both apply to the
  /// overlay devices as they are created ("hier.*", "hier.wal.*").
  void SetFaultInjector(FaultInjector* faults);
  void SetMetrics(MetricsRegistry* metrics);

  /// Contracts `network` and persists the shortcut graph. Fails (leaving
  /// the overlay invalid) on injected faults; with durability on the
  /// platter then holds either nothing or the complete overlay.
  Status Build(const Network& network);

  /// True once Build() or LoadImage() succeeded.
  bool valid() const { return valid_; }

  /// Reads one node's hierarchy record through the overlay pool. When `io`
  /// is given, a pool miss charges one read to it (per-session
  /// accounting). Thread-safe for concurrent readers.
  Result<HierarchyNodeRecord> ReadNode(NodeId id, IoStats* io);

  /// Overlay-disk I/O counters (the overlay analogue of DataIoStats).
  IoStats Stats() const;
  void ResetStats();

  const BuildInfo& build_info() const { return info_; }
  size_t NumNodes() const { return page_of_.size(); }
  size_t NumPages() const { return disk_ ? disk_->NumAllocatedPages() : 0; }
  size_t page_size() const { return disk_ ? disk_->page_size() : 0; }

  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  Wal* wal() { return wal_.get(); }

  /// Writes the overlay disk image (works even on a halted device — the
  /// crash harness's platter capture).
  Status SaveImage(const std::string& path) const;

  /// Restores an overlay from an image: replays the WAL tail when
  /// durability is on, then validates. Returns false when the image holds
  /// no overlay (missing file, empty disk, or no metadata record — the
  /// pre-durability-point crash outcomes), true when a fully valid overlay
  /// was restored; Corruption when the image claims an overlay that fails
  /// validation.
  Result<bool> LoadImage(const std::string& path);

  /// Full structural validation of the persisted overlay: the metadata
  /// record agrees with the stored records, ranks form a permutation,
  /// every arc points to a present, higher-ranked endpoint, every
  /// shortcut's middle node is a present, lower-ranked node, and every
  /// shortcut unpacks exactly through its middle node's down/up arcs.
  /// Reads every page once; the scan's reads are excluded from the I/O
  /// counters.
  Status CheckInvariants();

 private:
  Status WriteRecords(const std::vector<std::string>& encoded,
                      const std::vector<NodeId>& ids, size_t num_shortcuts);
  /// Reads and decodes every node record, rebuilding page_of_ as it goes.
  Result<std::vector<HierarchyNodeRecord>> ScanAll(HierarchyMeta* meta);
  void CreateDevices(size_t page_size);
  void ResetState();

  AccessMethodOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  std::unordered_map<NodeId, PageId> page_of_;
  bool valid_ = false;
  BuildInfo info_;
  FaultInjector* faults_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_CORE_HIERARCHY_OVERLAY_H_
