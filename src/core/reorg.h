#ifndef CCAM_CORE_REORG_H_
#define CCAM_CORE_REORG_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "src/graph/network.h"
#include "src/partition/partition.h"
#include "src/storage/page.h"

namespace ccam {

/// The Page Access Graph (paper Definition 1): nodes are data pages; an
/// edge connects pages P_i, P_j whenever some network edge (x, y) has
/// record(x) on P_i and record(y) on P_j. The reorganization policies of
/// Table 1 are defined over this graph.
class PageAccessGraph {
 public:
  /// Builds the PAG of `network` under the page assignment `page_of`.
  /// Self-edges (both endpoints on one page) are not PAG edges.
  static PageAccessGraph Build(const Network& network,
                               const NodePageMap& page_of);

  /// Definition 2: Is-Neighbor-Page(P, Q).
  bool IsNeighborPage(PageId p, PageId q) const;

  /// Definition 2: NbrPages(P) — pages adjacent to P, ascending.
  std::vector<PageId> NbrPages(PageId p) const;

  /// All pages (vertices), ascending.
  std::vector<PageId> Pages() const;

  size_t NumPages() const { return adjacency_.size(); }
  size_t NumEdges() const;

  /// Average PAG degree — a locality diagnostic: low degree means the
  /// clustering confines connectivity to few page pairs.
  double AvgDegree() const;

 private:
  std::unordered_map<PageId, std::set<PageId>> adjacency_;
};

/// Definition 2: PagesOfNbrs(x) — the pages holding the neighbors
/// (successors and predecessors) of node x, ascending.
std::vector<PageId> PagesOfNbrs(const Network& network, NodeId x,
                                const NodePageMap& page_of);

}  // namespace ccam

#endif  // CCAM_CORE_REORG_H_
