#include "src/core/ccam.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/graph/orders.h"
#include "src/partition/recursive_bisection.h"

namespace ccam {

const char* CcamInsertOrderName(CcamInsertOrder order) {
  switch (order) {
    case CcamInsertOrder::kNodeId:
      return "z-order";
    case CcamInsertOrder::kBfs:
      return "bfs";
    case CcamInsertOrder::kRandom:
      return "random";
  }
  return "unknown";
}

Ccam::Ccam(const AccessMethodOptions& options, CcamCreateMode mode,
           ReorgPolicy create_policy)
    : NetworkFile(options), mode_(mode), create_policy_(create_policy) {}

std::string Ccam::Name() const {
  return mode_ == CcamCreateMode::kStatic ? "CCAM-S" : "CCAM-D";
}

Status Ccam::Create(const Network& network) {
  if (mode_ == CcamCreateMode::kStatic) {
    ClusterOptions copts;
    copts.page_capacity = PageCapacity();
    copts.per_record_overhead = SlottedPage::kSlotOverhead;
    copts.algorithm = options_.partitioner;
    copts.use_access_weights = options_.use_access_weights;
    copts.min_fill_fraction = options_.cluster_min_fill;
    copts.seed = options_.seed;
    copts.num_threads = options_.num_threads;
    std::vector<std::vector<NodeId>> pages;
    CCAM_ASSIGN_OR_RETURN(
        pages, ClusterNodesIntoPages(network, network.NodeIds(), copts));
    return BuildFromAssignment(network, pages);
  }

  // Incremental create: a sequence of Add-node() operations. Records
  // carry their complete adjacency lists up front.
  std::vector<NodeId> order = network.NodeIds();  // ascending = Z-order
  switch (insert_order_) {
    case CcamInsertOrder::kNodeId:
      break;
    case CcamInsertOrder::kBfs: {
      Random rng(options_.seed);
      NodeId start =
          order[rng.Uniform(static_cast<uint32_t>(order.size()))];
      order = BfsOrder(network, start);
      break;
    }
    case CcamInsertOrder::kRandom: {
      Random rng(options_.seed);
      rng.Shuffle(&order);
      break;
    }
  }
  for (NodeId id : order) {
    NodeRecord rec = NodeRecord::FromNetworkNode(id, network.node(id));
    CCAM_RETURN_NOT_OK(AddNode(rec, create_policy_));
  }
  disk_.ResetStats();
  if (index_disk_) index_disk_->ResetStats();
  if (options_.hierarchy_overlay) {
    // Each AddNode above invalidated any overlay; build it once the file
    // is complete. The source network is still in hand — no rescan.
    CCAM_RETURN_NOT_OK(BuildHierarchyOverlayFromNetwork(network));
  }
  return Status::OK();
}

Status Ccam::AddNode(const NodeRecord& record, ReorgPolicy policy) {
  MutationScope txn(this);
  return txn.Finish(AddNodeImpl(record, policy));
}

Status Ccam::AddNodeImpl(const NodeRecord& record, ReorgPolicy policy) {
  last_op_structural_ = false;
  if (page_of_.count(record.id) > 0) {
    return Status::AlreadyExists("node " + std::to_string(record.id));
  }
  if (record.EncodedSize() + SlottedPage::kSlotOverhead > PageCapacity()) {
    return Status::NoSpace("record larger than a page");
  }
  PageId target = ChoosePageForInsert(record);
  if (target == kInvalidPageId) {
    CCAM_ASSIGN_OR_RETURN(target, NewDataPage());
  }
  CCAM_RETURN_NOT_OK(AddRecordToPage(target, record));
  OnRecordPlaced(record.id, target);

  if (policy != ReorgPolicy::kFirstOrder) {
    std::vector<PageId> touched = PagesOfNeighbors(record);
    touched.push_back(target);
    if (policy == ReorgPolicy::kHigherOrder) {
      std::vector<PageId> extra;
      CCAM_ASSIGN_OR_RETURN(extra, NbrPages(target));
      touched.insert(touched.end(), extra.begin(), extra.end());
    }
    CCAM_RETURN_NOT_OK(ReorganizeForPolicy(policy, std::move(touched)));
  }
  return FinishUpdate();
}

}  // namespace ccam
