#ifndef CCAM_CORE_COST_MODEL_H_
#define CCAM_CORE_COST_MODEL_H_

#include "src/core/access_method.h"

namespace ccam {

/// Parameters of the paper's algebraic cost model (Table 2):
///   alpha    CRR = Pr[Page(i) == Page(j)] for an edge (i, j)
///   avg_succ |A|: average successor-list length
///   lambda   average neighbor-list size
///   gamma    average blocking factor (records per page)
struct CostModelParams {
  double alpha = 0.0;
  double avg_succ = 0.0;
  double lambda = 0.0;
  double gamma = 0.0;
};

/// Extracts the cost-model parameters from a live access method and the
/// logical network it stores.
CostModelParams MeasureCostModelParams(const Network& network,
                                       const AccessMethod& am);

/// Table 3 — search operations (data page accesses, page of the source
/// node assumed buffered):
///   Get-successors():  (1 - alpha) * |A|
///   Get-A-successor(): 1 - alpha
///   Route evaluation:  1 + (L - 1) * (1 - alpha), one-page buffer
double PredictedGetSuccessorsCost(const CostModelParams& p);
double PredictedGetASuccessorCost(const CostModelParams& p);
double PredictedRouteEvaluationCost(const CostModelParams& p, int length);

/// Table 4 — worst-case retrieval (read) cost of update operations under a
/// reorganization policy. Total accesses are twice the reads (the paper
/// takes write cost equal to read cost).
double PredictedInsertReadCost(const CostModelParams& p, ReorgPolicy policy);
double PredictedDeleteReadCost(const CostModelParams& p, ReorgPolicy policy);

/// Read+write accesses for Delete(), the "Predicted" column of Table 5.
double PredictedDeleteAccesses(const CostModelParams& p, ReorgPolicy policy);

}  // namespace ccam

#endif  // CCAM_CORE_COST_MODEL_H_
