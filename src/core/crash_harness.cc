#include "src/core/crash_harness.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "src/common/coding.h"
#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/graph/generator.h"
#include "src/storage/snapshot_manager.h"

namespace ccam {
namespace {

AccessMethodOptions MakeOptions(const CrashSimOptions& opt) {
  AccessMethodOptions o;
  o.page_size = opt.page_size;
  o.buffer_pool_pages = opt.buffer_pool_pages;
  o.seed = opt.seed;
  o.durability = opt.durability;
  // Single-threaded clustering: the page *assignment* is bit-identical for
  // every thread count, but the crash model indexes into the page *write
  // sequence*, which must not depend on scheduling either.
  o.num_threads = 1;
  return o;
}

bool IsLogicalFailure(const Status& st) {
  return st.IsNotFound() || st.IsAlreadyExists() || st.IsNoSpace() ||
         st.IsInvalidArgument();
}

/// What the strict criterion compares against: the mirror of every
/// acknowledged operation, and that state plus the single operation that
/// was in flight when the device halted (a committed-but-unacknowledged
/// transaction is allowed to survive).
struct WorkloadTrace {
  Network acked;
  Network inflight;
  bool halted = false;
};

/// Applies the seeded workload to `file`: static create from a geometric
/// network, then `opt.ops` mixed maintenance operations. `net` mirrors the
/// successful operations so later picks stay (mostly) valid; the op stream
/// is a pure function of `opt.seed`. Returns OK when the workload either
/// ran to completion or stopped at a simulated device halt; anything else
/// is a harness-level error.
Status RunWorkload(Ccam* file, const CrashSimOptions& opt,
                   WorkloadTrace* trace) {
  // Flight recorder: when the harness attached a registry with an enabled
  // ring, each workload step leaves an event, so a failing kill point can
  // be reconstructed from its dump.
  TraceRing* ring =
      file->metrics() != nullptr ? file->metrics()->trace() : nullptr;
  Network net = GenerateRandomGeometricNetwork(opt.initial_nodes,
                                               /*radius=*/220.0,
                                               /*extent=*/1000.0, opt.seed);
  Status st = file->Create(net);
  if (ring != nullptr && ring->enabled()) {
    ring->Record(st.ok() ? "workload.create" : "workload.create_failed", 0,
                 net.NodeIds().size());
  }
  if (!st.ok()) {
    if (!file->disk()->halted()) return st;
    if (trace != nullptr) {
      // Nothing was acked; the whole create is the in-flight operation.
      trace->halted = true;
      trace->inflight = std::move(net);
    }
    return Status::OK();
  }
  Random rng(opt.seed ^ 0x9e3779b97f4a7c15ULL);
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);
  for (int i = 0; i < opt.ops; ++i) {
    std::vector<NodeId> live = net.NodeIds();
    if (live.empty()) break;
    auto pick = [&] { return live[rng.Uniform(static_cast<uint32_t>(live.size()))]; };
    uint32_t kind = rng.Uniform(100);
    Status op;
    // Mirrors the operation into a Network: applied to `net` when the file
    // acked it, and to the in-flight copy when the device died during it.
    std::function<Status(Network*)> mirror;
    if (kind < 25) {
      // Insert a fresh node wired to up to two existing ones.
      NodeRecord rec;
      rec.id = next_id++;
      rec.x = rng.NextDouble() * 1000.0;
      rec.y = rng.NextDouble() * 1000.0;
      rec.payload = "n" + std::to_string(rec.id);
      NodeId a = pick();
      NodeId b = pick();
      float ca = 1.0f + static_cast<float>(rng.Uniform(9));
      float cb = 1.0f + static_cast<float>(rng.Uniform(9));
      rec.succ.push_back({a, ca});
      rec.pred.push_back({a, ca});
      if (b != a) {
        rec.succ.push_back({b, cb});
        rec.pred.push_back({b, cb});
      }
      op = file->InsertNode(rec, opt.policy);
      mirror = [rec](Network* n) {
        CCAM_RETURN_NOT_OK(n->AddNode(rec.id, rec.x, rec.y, rec.payload));
        for (const AdjEntry& e : rec.succ) {
          CCAM_RETURN_NOT_OK(n->AddBidirectionalEdge(rec.id, e.node, e.cost));
        }
        return Status::OK();
      };
    } else if (kind < 40) {
      NodeId victim = pick();
      op = file->DeleteNode(victim, opt.policy);
      mirror = [victim](Network* n) { return n->RemoveNode(victim); };
    } else if (kind < 75) {
      NodeId u = pick();
      NodeId v = pick();
      if (u == v || net.HasEdge(u, v)) continue;
      float cost = 1.0f + static_cast<float>(rng.Uniform(9));
      op = file->InsertEdge(u, v, cost, opt.policy);
      mirror = [u, v, cost](Network* n) { return n->AddEdge(u, v, cost); };
    } else {
      NodeId u = pick();
      const auto& succ = net.node(u).succ;
      if (succ.empty()) continue;
      NodeId v = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))].node;
      op = file->DeleteEdge(u, v, opt.policy);
      mirror = [u, v](Network* n) { return n->RemoveEdge(u, v); };
    }
    if (ring != nullptr && ring->enabled()) {
      ring->Record(op.ok() ? "workload.op" : "workload.op_failed", 0,
                   static_cast<uint64_t>(i));
    }
    if (op.ok()) {
      CCAM_RETURN_NOT_OK(mirror(&net));
    } else {
      if (file->disk()->halted()) {
        if (ring != nullptr && ring->enabled()) {
          ring->Record("workload.halted", 0, static_cast<uint64_t>(i));
        }
        if (trace != nullptr) {
          trace->halted = true;
          trace->inflight = net;
          (void)mirror(&trace->inflight);
          trace->acked = std::move(net);
        }
        return Status::OK();
      }
      if (!IsLogicalFailure(op)) return op;
    }
  }
  if (trace != nullptr) {
    trace->halted = file->disk()->halted();
    trace->inflight = net;
    trace->acked = std::move(net);
  }
  return Status::OK();
}

std::vector<AdjEntry> SortedAdj(std::vector<AdjEntry> v) {
  std::sort(v.begin(), v.end(), [](const AdjEntry& a, const AdjEntry& b) {
    return a.node != b.node ? a.node < b.node : a.cost < b.cost;
  });
  return v;
}

/// Exact-state oracle for the strict criterion: the file must contain
/// precisely the nodes of `net`, each with matching attributes and
/// adjacency lists. Returns Corruption naming the first divergence.
Status CompareFileToNetwork(Ccam* file, const Network& net) {
  std::vector<NodeId> ids = net.NodeIds();
  if (file->PageMap().size() != ids.size()) {
    return Status::Corruption(
        "file holds " + std::to_string(file->PageMap().size()) +
        " nodes, expected " + std::to_string(ids.size()));
  }
  for (NodeId id : ids) {
    auto rec = file->Find(id);
    if (!rec.ok()) {
      return Status::Corruption("node " + std::to_string(id) + ": " +
                                rec.status().ToString());
    }
    const NetworkNode& node = net.node(id);
    if (rec->x != node.x || rec->y != node.y ||
        rec->payload != node.payload) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": attribute mismatch");
    }
    if (SortedAdj(rec->succ) != SortedAdj(node.succ)) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": successor list mismatch");
    }
    if (SortedAdj(rec->pred) != SortedAdj(node.pred)) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": predecessor list mismatch");
    }
  }
  return Status::OK();
}

Result<uint32_t> FileCrc(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string bytes = ss.str();
  return Crc32c(bytes.data(), bytes.size());
}

}  // namespace

const char* CrashOutcomeName(CrashOutcome outcome) {
  switch (outcome) {
    case CrashOutcome::kNoCrash:
      return "no-crash";
    case CrashOutcome::kRecovered:
      return "recovered";
    case CrashOutcome::kCorruptionDetected:
      return "corruption-detected";
    case CrashOutcome::kDurable:
      return "durable";
    case CrashOutcome::kLostAck:
      return "lost-ack";
    case CrashOutcome::kRecoveryFailed:
      return "recovery-failed";
  }
  return "unknown";
}

Result<uint64_t> CountWorkloadWrites(const CrashSimOptions& options) {
  FaultInjector faults(options.seed);
  // Armed with a trigger that never fires: Hit() only counts evaluations
  // of points it knows about, and the count of the kill failpoint in a
  // fault-free run *is* the kill-point space.
  faults.Arm(options.crash_failpoint, FaultAction{}, FaultTrigger::Once(0));
  Ccam file(MakeOptions(options));
  file.SetFaultInjector(&faults);
  CCAM_RETURN_NOT_OK(RunWorkload(&file, options, nullptr));
  return faults.HitCount(options.crash_failpoint);
}

Result<CrashRunResult> RunCrashOnce(const CrashSimOptions& options,
                                    uint64_t crash_point) {
  if (options.image_path.empty()) {
    return Status::InvalidArgument("CrashSimOptions::image_path is required");
  }
  FaultInjector faults(options.seed);
  CCAM_RETURN_NOT_OK(faults.Configure(
      options.crash_failpoint + "=crash:" +
      std::to_string(options.torn_bytes) + "@" +
      std::to_string(crash_point)));
  Ccam file(MakeOptions(options));
  file.SetFaultInjector(&faults);
  // Flight recorder for this kill point: the ring is dumped to stderr only
  // when the run ends in a criterion violation. Attaching the registry does
  // not perturb the workload — instrumentation never touches the simulated
  // I/O accounting or the RNG stream.
  MetricsRegistry metrics;
  metrics.trace()->Enable(512);
  file.SetMetrics(&metrics);
  WorkloadTrace trace;
  CCAM_RETURN_NOT_OK(RunWorkload(&file, options, &trace));
  auto dump_flight_recorder = [&](const CrashRunResult& failed) {
    std::fprintf(stderr,
                 "crash harness: %s at kill point %llu (%s)\n"
                 "flight recorder (oldest first):\n",
                 CrashOutcomeName(failed.outcome),
                 static_cast<unsigned long long>(crash_point),
                 failed.detail.c_str());
    metrics.trace()->Dump(stderr);
  };

  CrashRunResult out;
  out.writes_before_crash = file.disk()->stats().writes;
  if (!file.disk()->halted()) {
    out.outcome = CrashOutcome::kNoCrash;
    return out;
  }
  {
    // Capture the platter exactly as the crash left it. Dirty buffer-pool
    // frames are deliberately NOT flushed — they never reached disk. The
    // capture includes the durable WAL prefix and the page seals.
    FaultInjector::SuppressScope suppress(&faults);
    CCAM_RETURN_NOT_OK(file.disk()->SaveToFile(options.image_path));
  }
  Ccam reopened(MakeOptions(options));
  Status st = reopened.OpenImage(options.image_path);
  if (st.ok()) st = reopened.CheckFileInvariants();
  if (st.ok()) st = reopened.CheckGraphInvariants();
  metrics.trace()->Record(st.ok() ? "recover.reopen" : "recover.reopen_failed",
                          0, reopened.PageMap().size());

  if (!options.durability) {
    if (st.ok()) {
      out.outcome = CrashOutcome::kRecovered;
      out.recovered_nodes = reopened.PageMap().size();
    } else {
      out.outcome = CrashOutcome::kCorruptionDetected;
      out.detail = st.ToString();
    }
    return out;
  }

  // Strict criterion: recovery must succeed ...
  if (!st.ok()) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = st.ToString();
    dump_flight_recorder(out);
    return out;
  }
  out.recovered_nodes = reopened.PageMap().size();
  // ... the recovered state must be the acked prefix, or the acked prefix
  // plus the in-flight operation applied atomically ...
  Status acked = CompareFileToNetwork(&reopened, trace.acked);
  if (!acked.ok()) {
    Status inflight = CompareFileToNetwork(&reopened, trace.inflight);
    if (!inflight.ok()) {
      out.outcome = CrashOutcome::kLostAck;
      out.detail = "vs acked state: " + acked.ToString() +
                   "; vs acked+in-flight: " + inflight.ToString();
      dump_flight_recorder(out);
      return out;
    }
  }
  // ... and replay must be deterministic: recovering the same captured
  // image twice yields byte-identical results.
  std::string r1 = options.image_path + ".r1";
  std::string r2 = options.image_path + ".r2";
  Status det = reopened.disk()->SaveToFile(r1);
  if (det.ok()) {
    Ccam again(MakeOptions(options));
    det = again.OpenImage(options.image_path);
    if (det.ok()) det = again.disk()->SaveToFile(r2);
  }
  if (!det.ok()) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = "recovery replay: " + det.ToString();
    dump_flight_recorder(out);
    return out;
  }
  uint32_t c1, c2;
  CCAM_ASSIGN_OR_RETURN(c1, FileCrc(r1));
  CCAM_ASSIGN_OR_RETURN(c2, FileCrc(r2));
  std::remove(r1.c_str());
  std::remove(r2.c_str());
  if (c1 != c2) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = "non-deterministic recovery replay";
    dump_flight_recorder(out);
    return out;
  }
  out.recovered_image_crc = c1;
  out.outcome = CrashOutcome::kDurable;
  return out;
}

Result<CrashSimReport> RunCrashSim(const CrashSimOptions& options,
                                   uint64_t num_points) {
  CrashSimReport report;
  CCAM_ASSIGN_OR_RETURN(report.total_writes, CountWorkloadWrites(options));
  if (report.total_writes == 0 || num_points == 0) return report;
  uint64_t n = std::min(num_points, report.total_writes);
  for (uint64_t i = 0; i < n; ++i) {
    // Spread the points evenly over the write sequence, first and last
    // writes included.
    uint64_t point =
        1 + (i * (report.total_writes - 1)) / (n > 1 ? n - 1 : 1);
    CrashPointReport entry;
    entry.crash_point = point;
    CCAM_ASSIGN_OR_RETURN(entry.result, RunCrashOnce(options, point));
    switch (entry.result.outcome) {
      case CrashOutcome::kNoCrash:
        ++report.no_crash;
        break;
      case CrashOutcome::kRecovered:
        ++report.recovered;
        break;
      case CrashOutcome::kCorruptionDetected:
        ++report.corruption_detected;
        break;
      case CrashOutcome::kDurable:
        ++report.durable;
        break;
      case CrashOutcome::kLostAck:
        ++report.lost_ack;
        break;
      case CrashOutcome::kRecoveryFailed:
        ++report.recovery_failed;
        break;
    }
    report.points.push_back(std::move(entry));
  }
  return report;
}

// --- Snapshot-store sweep ---------------------------------------------------

namespace {

SnapshotOptions MakeSnapshotOptions(const SnapshotCrashOptions& opt) {
  SnapshotOptions o;
  o.am.page_size = opt.page_size;
  o.am.buffer_pool_pages = opt.buffer_pool_pages;
  o.am.seed = opt.seed;
  // Deterministic build sequence, same reasoning as MakeOptions: the kill
  // point indexes into the failpoint-evaluation sequence, which must be a
  // pure function of the seed.
  o.am.num_threads = 1;
  o.dir = opt.dir;
  return o;
}

/// The snapshot oracle's reference states: the mirror of every
/// acknowledged mutation, and that state plus the mutation in flight when
/// the store halted. Reorganizations never change the logical network, so
/// a kill inside build/publish/retire leaves acked == in-flight.
struct SnapshotTrace {
  Network acked;
  Network inflight;
  bool halted = false;
};

/// Exact-state oracle: `got` must be precisely the network `want`, node
/// for node and edge for edge (adjacency order-insensitive — recovery
/// rebuilds predecessor lists in page-scan order).
Status CompareNetworks(const Network& got, const Network& want) {
  std::vector<NodeId> want_ids = want.NodeIds();
  std::vector<NodeId> got_ids = got.NodeIds();
  if (got_ids != want_ids) {
    return Status::Corruption("network holds " +
                              std::to_string(got_ids.size()) +
                              " nodes, expected " +
                              std::to_string(want_ids.size()) +
                              " (or differing ids)");
  }
  for (NodeId id : want_ids) {
    const NetworkNode& g = got.node(id);
    const NetworkNode& w = want.node(id);
    if (g.x != w.x || g.y != w.y || g.payload != w.payload) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": attribute mismatch");
    }
    if (SortedAdj(g.succ) != SortedAdj(w.succ)) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": successor list mismatch");
    }
    if (SortedAdj(g.pred) != SortedAdj(w.pred)) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": predecessor list mismatch");
    }
  }
  return Status::OK();
}

/// Applies the seeded mutation stream to `mgr`, reorganizing every
/// `reorg_every` acked mutations. The op mix mirrors RunWorkload's, but
/// mutations are mirrored through SnapshotManager::ApplyMutation — the
/// same code path recovery replays, so oracle and store cannot diverge on
/// semantics. Returns OK when the workload ran to completion or stopped at
/// an injected halt.
Status RunSnapshotWorkload(SnapshotManager* mgr,
                           const SnapshotCrashOptions& opt,
                           SnapshotTrace* trace) {
  Network net = mgr->network();
  Random rng(opt.seed ^ 0x9e3779b97f4a7c15ULL);
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);

  // Crash bookkeeping: `rec` (when non-null) is the mutation the store
  // died inside of — acked state is the mirror, in-flight state is the
  // mirror plus that one mutation.
  auto halt_with = [&](const DeltaRecord* rec) {
    if (trace == nullptr) return;
    trace->halted = true;
    trace->inflight = net;
    if (rec != nullptr &&
        SnapshotManager::ValidateMutation(trace->inflight, *rec).ok()) {
      (void)SnapshotManager::ApplyMutation(&trace->inflight, *rec);
    }
    trace->acked = std::move(net);
  };

  int acked = 0;
  for (int i = 0; i < opt.ops; ++i) {
    std::vector<NodeId> live = net.NodeIds();
    if (live.empty()) break;
    auto pick = [&] {
      return live[rng.Uniform(static_cast<uint32_t>(live.size()))];
    };
    uint32_t kind = rng.Uniform(100);
    DeltaRecord rec;
    Status op;
    if (kind < 25) {
      rec.kind = DeltaRecord::Kind::kInsertNode;
      rec.node.id = next_id++;
      rec.node.x = rng.NextDouble() * 1000.0;
      rec.node.y = rng.NextDouble() * 1000.0;
      rec.node.payload = "n" + std::to_string(rec.node.id);
      NodeId a = pick();
      NodeId b = pick();
      float ca = 1.0f + static_cast<float>(rng.Uniform(9));
      float cb = 1.0f + static_cast<float>(rng.Uniform(9));
      rec.node.succ.push_back({a, ca});
      rec.node.pred.push_back({a, ca});
      if (b != a) {
        rec.node.succ.push_back({b, cb});
        rec.node.pred.push_back({b, cb});
      }
      op = mgr->InsertNode(rec.node);
    } else if (kind < 40) {
      rec.kind = DeltaRecord::Kind::kDeleteNode;
      rec.u = pick();
      op = mgr->DeleteNode(rec.u);
    } else if (kind < 75) {
      NodeId u = pick();
      NodeId v = pick();
      if (u == v || net.HasEdge(u, v)) continue;
      rec.kind = DeltaRecord::Kind::kInsertEdge;
      rec.u = u;
      rec.v = v;
      rec.cost = 1.0f + static_cast<float>(rng.Uniform(9));
      op = mgr->InsertEdge(rec.u, rec.v, rec.cost);
    } else {
      NodeId u = pick();
      const auto& succ = net.node(u).succ;
      if (succ.empty()) continue;
      rec.kind = DeltaRecord::Kind::kDeleteEdge;
      rec.u = u;
      rec.v = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))].node;
      op = mgr->DeleteEdge(rec.u, rec.v);
    }
    if (op.ok()) {
      CCAM_RETURN_NOT_OK(SnapshotManager::ApplyMutation(&net, rec));
      ++acked;
      if (opt.reorg_every > 0 && acked % opt.reorg_every == 0) {
        Status reorg = mgr->ReorganizeNow();
        if (!reorg.ok()) {
          if (mgr->halted()) {
            halt_with(nullptr);
            return Status::OK();
          }
          return reorg;
        }
      }
    } else if (mgr->halted()) {
      halt_with(&rec);
      return Status::OK();
    } else if (!IsLogicalFailure(op)) {
      return op;
    }
  }
  if (trace != nullptr) {
    trace->halted = mgr->halted();
    trace->inflight = net;
    trace->acked = std::move(net);
  }
  return Status::OK();
}

/// Wipes and recreates the store directory, creates the store from the
/// seeded network and attaches the injector. The injector is attached
/// AFTER Create: the initial publication is not part of the kill-point
/// space (there is no previous version to fall back to).
Result<std::unique_ptr<SnapshotManager>> FreshStore(
    const SnapshotCrashOptions& opt, FaultInjector* faults) {
  if (opt.dir.empty()) {
    return Status::InvalidArgument("SnapshotCrashOptions::dir is required");
  }
  std::error_code ec;
  std::filesystem::remove_all(opt.dir, ec);
  Network initial = GenerateRandomGeometricNetwork(opt.initial_nodes,
                                                   /*radius=*/220.0,
                                                   /*extent=*/1000.0, opt.seed);
  std::unique_ptr<SnapshotManager> mgr;
  CCAM_ASSIGN_OR_RETURN(mgr,
                        SnapshotManager::Create(MakeSnapshotOptions(opt),
                                                initial));
  mgr->SetFaultInjector(faults);
  return mgr;
}

}  // namespace

Result<uint64_t> CountSnapshotKillPoints(const SnapshotCrashOptions& options) {
  FaultInjector faults(options.seed);
  // Same never-firing trigger trick as CountWorkloadWrites: the hit count
  // of the kill failpoint in a fault-free run is the kill-point space.
  faults.Arm(options.crash_failpoint, FaultAction{}, FaultTrigger::Once(0));
  std::unique_ptr<SnapshotManager> mgr;
  CCAM_ASSIGN_OR_RETURN(mgr, FreshStore(options, &faults));
  CCAM_RETURN_NOT_OK(RunSnapshotWorkload(mgr.get(), options, nullptr));
  return faults.HitCount(options.crash_failpoint);
}

Result<CrashRunResult> RunSnapshotCrashOnce(const SnapshotCrashOptions& options,
                                            uint64_t crash_point) {
  FaultInjector faults(options.seed);
  CCAM_RETURN_NOT_OK(faults.Configure(
      options.crash_failpoint + "=crash:" +
      std::to_string(options.torn_bytes) + "@" +
      std::to_string(crash_point)));
  std::unique_ptr<SnapshotManager> mgr;
  CCAM_ASSIGN_OR_RETURN(mgr, FreshStore(options, &faults));
  SnapshotTrace trace;
  CCAM_RETURN_NOT_OK(RunSnapshotWorkload(mgr.get(), options, &trace));

  CrashRunResult out;
  out.writes_before_crash = faults.HitCount(options.crash_failpoint);
  if (!mgr->halted()) {
    out.outcome = CrashOutcome::kNoCrash;
    return out;
  }
  // The directory now holds the torn on-disk shape of the kill instant
  // (the store never buffers durable state in memory only — the delta log
  // flush already happened for every acked mutation). Drop the halted
  // store and recover from the directory alone.
  mgr.reset();

  auto reopened = SnapshotManager::Open(MakeSnapshotOptions(options));
  if (!reopened.ok()) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = reopened.status().ToString();
    return out;
  }
  Status st = (*reopened)->CheckConsistency();
  if (!st.ok()) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = st.ToString();
    return out;
  }
  Network recovered = (*reopened)->network();
  uint64_t recovered_lsn = (*reopened)->NextLsn();
  out.recovered_nodes = recovered.NodeIds().size();

  // Strict criterion: exactly the acked stream, or acked + the in-flight
  // mutation (its log frame may have fully reached disk before the tear).
  Status acked = CompareNetworks(recovered, trace.acked);
  if (!acked.ok()) {
    Status inflight = CompareNetworks(recovered, trace.inflight);
    if (!inflight.ok()) {
      out.outcome = CrashOutcome::kLostAck;
      out.detail = "vs acked state: " + acked.ToString() +
                   "; vs acked+in-flight: " + inflight.ToString();
      return out;
    }
  }

  // Recovery must be idempotent: opening the once-recovered directory
  // again lands on the same network and the same next lsn.
  reopened->reset();
  auto again = SnapshotManager::Open(MakeSnapshotOptions(options));
  if (!again.ok()) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = "second recovery: " + again.status().ToString();
    return out;
  }
  Status same = CompareNetworks((*again)->network(), recovered);
  if (!same.ok() || (*again)->NextLsn() != recovered_lsn) {
    out.outcome = CrashOutcome::kRecoveryFailed;
    out.detail = "non-idempotent recovery: " +
                 (same.ok() ? "lsn mismatch" : same.ToString());
    return out;
  }
  uint32_t crc;
  CCAM_ASSIGN_OR_RETURN(
      crc, FileCrc(options.dir + "/v" +
                   std::to_string((*again)->CurrentVersionId()) + ".img"));
  out.recovered_image_crc = crc;
  out.outcome = CrashOutcome::kDurable;
  return out;
}

Result<CrashSimReport> RunSnapshotCrashSim(const SnapshotCrashOptions& options,
                                           uint64_t num_points) {
  CrashSimReport report;
  CCAM_ASSIGN_OR_RETURN(report.total_writes,
                        CountSnapshotKillPoints(options));
  if (report.total_writes == 0 || num_points == 0) return report;
  uint64_t n = std::min(num_points, report.total_writes);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t point =
        1 + (i * (report.total_writes - 1)) / (n > 1 ? n - 1 : 1);
    CrashPointReport entry;
    entry.crash_point = point;
    CCAM_ASSIGN_OR_RETURN(entry.result,
                          RunSnapshotCrashOnce(options, point));
    switch (entry.result.outcome) {
      case CrashOutcome::kNoCrash:
        ++report.no_crash;
        break;
      case CrashOutcome::kRecovered:
        ++report.recovered;
        break;
      case CrashOutcome::kCorruptionDetected:
        ++report.corruption_detected;
        break;
      case CrashOutcome::kDurable:
        ++report.durable;
        break;
      case CrashOutcome::kLostAck:
        ++report.lost_ack;
        break;
      case CrashOutcome::kRecoveryFailed:
        ++report.recovery_failed;
        break;
    }
    report.points.push_back(std::move(entry));
  }
  return report;
}

}  // namespace ccam
