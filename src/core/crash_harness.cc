#include "src/core/crash_harness.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/random.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions MakeOptions(const CrashSimOptions& opt) {
  AccessMethodOptions o;
  o.page_size = opt.page_size;
  o.buffer_pool_pages = opt.buffer_pool_pages;
  o.seed = opt.seed;
  // Single-threaded clustering: the page *assignment* is bit-identical for
  // every thread count, but the crash model indexes into the page *write
  // sequence*, which must not depend on scheduling either.
  o.num_threads = 1;
  return o;
}

bool IsLogicalFailure(const Status& st) {
  return st.IsNotFound() || st.IsAlreadyExists() || st.IsNoSpace() ||
         st.IsInvalidArgument();
}

/// Applies the seeded workload to `file`: static create from a geometric
/// network, then `opt.ops` mixed maintenance operations. `net` mirrors the
/// successful operations so later picks stay (mostly) valid; the op stream
/// is a pure function of `opt.seed`. Returns OK when the workload either
/// ran to completion or stopped at a simulated device halt; anything else
/// is a harness-level error.
Status RunWorkload(Ccam* file, const CrashSimOptions& opt) {
  Network net = GenerateRandomGeometricNetwork(opt.initial_nodes,
                                               /*radius=*/220.0,
                                               /*extent=*/1000.0, opt.seed);
  Status st = file->Create(net);
  if (!st.ok()) {
    return file->disk()->halted() ? Status::OK() : st;
  }
  Random rng(opt.seed ^ 0x9e3779b97f4a7c15ULL);
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);
  for (int i = 0; i < opt.ops; ++i) {
    std::vector<NodeId> live = net.NodeIds();
    if (live.empty()) break;
    auto pick = [&] { return live[rng.Uniform(static_cast<uint32_t>(live.size()))]; };
    uint32_t kind = rng.Uniform(100);
    Status op;
    if (kind < 25) {
      // Insert a fresh node wired to up to two existing ones.
      NodeRecord rec;
      rec.id = next_id++;
      rec.x = rng.NextDouble() * 1000.0;
      rec.y = rng.NextDouble() * 1000.0;
      rec.payload = "n" + std::to_string(rec.id);
      NodeId a = pick();
      NodeId b = pick();
      float ca = 1.0f + static_cast<float>(rng.Uniform(9));
      float cb = 1.0f + static_cast<float>(rng.Uniform(9));
      rec.succ.push_back({a, ca});
      rec.pred.push_back({a, ca});
      if (b != a) {
        rec.succ.push_back({b, cb});
        rec.pred.push_back({b, cb});
      }
      op = file->InsertNode(rec, opt.policy);
      if (op.ok()) {
        CCAM_RETURN_NOT_OK(net.AddNode(rec.id, rec.x, rec.y, rec.payload));
        for (const AdjEntry& e : rec.succ) {
          CCAM_RETURN_NOT_OK(net.AddBidirectionalEdge(rec.id, e.node, e.cost));
        }
      }
    } else if (kind < 40) {
      NodeId victim = pick();
      op = file->DeleteNode(victim, opt.policy);
      if (op.ok()) CCAM_RETURN_NOT_OK(net.RemoveNode(victim));
    } else if (kind < 75) {
      NodeId u = pick();
      NodeId v = pick();
      if (u == v || net.HasEdge(u, v)) continue;
      float cost = 1.0f + static_cast<float>(rng.Uniform(9));
      op = file->InsertEdge(u, v, cost, opt.policy);
      if (op.ok()) CCAM_RETURN_NOT_OK(net.AddEdge(u, v, cost));
    } else {
      NodeId u = pick();
      const auto& succ = net.node(u).succ;
      if (succ.empty()) continue;
      NodeId v = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))].node;
      op = file->DeleteEdge(u, v, opt.policy);
      if (op.ok()) CCAM_RETURN_NOT_OK(net.RemoveEdge(u, v));
    }
    if (!op.ok()) {
      if (file->disk()->halted()) return Status::OK();
      if (!IsLogicalFailure(op)) return op;
    }
  }
  return Status::OK();
}

}  // namespace

const char* CrashOutcomeName(CrashOutcome outcome) {
  switch (outcome) {
    case CrashOutcome::kNoCrash:
      return "no-crash";
    case CrashOutcome::kRecovered:
      return "recovered";
    case CrashOutcome::kCorruptionDetected:
      return "corruption-detected";
  }
  return "unknown";
}

Result<uint64_t> CountWorkloadWrites(const CrashSimOptions& options) {
  Ccam file(MakeOptions(options));
  CCAM_RETURN_NOT_OK(RunWorkload(&file, options));
  return file.disk()->stats().writes;
}

Result<CrashRunResult> RunCrashOnce(const CrashSimOptions& options,
                                    uint64_t crash_point) {
  if (options.image_path.empty()) {
    return Status::InvalidArgument("CrashSimOptions::image_path is required");
  }
  FaultInjector faults(options.seed);
  CCAM_RETURN_NOT_OK(faults.Configure(
      "disk.write=crash:" + std::to_string(options.torn_bytes) + "@" +
      std::to_string(crash_point)));
  Ccam file(MakeOptions(options));
  file.SetFaultInjector(&faults);
  CCAM_RETURN_NOT_OK(RunWorkload(&file, options));

  CrashRunResult out;
  out.writes_before_crash = file.disk()->stats().writes;
  if (!file.disk()->halted()) {
    out.outcome = CrashOutcome::kNoCrash;
    return out;
  }
  {
    // Capture the platter exactly as the crash left it. Dirty buffer-pool
    // frames are deliberately NOT flushed — they never reached disk.
    FaultInjector::SuppressScope suppress(&faults);
    CCAM_RETURN_NOT_OK(file.disk()->SaveToFile(options.image_path));
  }
  Ccam reopened(MakeOptions(options));
  Status st = reopened.OpenImage(options.image_path);
  if (st.ok()) st = reopened.CheckFileInvariants();
  if (st.ok()) st = reopened.CheckGraphInvariants();
  if (st.ok()) {
    out.outcome = CrashOutcome::kRecovered;
    out.recovered_nodes = reopened.PageMap().size();
  } else {
    out.outcome = CrashOutcome::kCorruptionDetected;
    out.detail = st.ToString();
  }
  return out;
}

Result<CrashSimReport> RunCrashSim(const CrashSimOptions& options,
                                   uint64_t num_points) {
  CrashSimReport report;
  CCAM_ASSIGN_OR_RETURN(report.total_writes, CountWorkloadWrites(options));
  if (report.total_writes == 0 || num_points == 0) return report;
  uint64_t n = std::min(num_points, report.total_writes);
  for (uint64_t i = 0; i < n; ++i) {
    // Spread the points evenly over the write sequence, first and last
    // writes included.
    uint64_t point =
        1 + (i * (report.total_writes - 1)) / (n > 1 ? n - 1 : 1);
    CrashPointReport entry;
    entry.crash_point = point;
    CCAM_ASSIGN_OR_RETURN(entry.result, RunCrashOnce(options, point));
    switch (entry.result.outcome) {
      case CrashOutcome::kNoCrash:
        ++report.no_crash;
        break;
      case CrashOutcome::kRecovered:
        ++report.recovered;
        break;
      case CrashOutcome::kCorruptionDetected:
        ++report.corruption_detected;
        break;
    }
    report.points.push_back(std::move(entry));
  }
  return report;
}

}  // namespace ccam
