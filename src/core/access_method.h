#ifndef CCAM_CORE_ACCESS_METHOD_H_
#define CCAM_CORE_ACCESS_METHOD_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/graph/network.h"
#include "src/partition/partition.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/hierarchy_record.h"
#include "src/storage/io_stats.h"
#include "src/storage/record.h"

namespace ccam {

class MetricsRegistry;
class RequestContext;

/// Reorganization policies for maintenance operations (paper Table 1).
/// The policy order is the order of overhead incurred during an update:
/// higher order policies reorganize more pages and can achieve higher CRR.
enum class ReorgPolicy {
  /// No reorganization; only underflow/overflow handling.
  kFirstOrder,
  /// Reorganize the pages that must be updated anyhow:
  /// {Page(x)} ∪ PagesOfNbrs(x) for node arguments,
  /// {Page(u), Page(v)} for edge arguments.
  kSecondOrder,
  /// Additionally reorganize the neighbor pages in the page access graph.
  kHigherOrder,
};

const char* ReorgPolicyName(ReorgPolicy policy);

/// Tuning knobs shared by all network access methods.
struct AccessMethodOptions {
  /// Disk block size in bytes (the paper sweeps 512..4096).
  size_t page_size = 1024;
  /// Data buffer pool capacity in pages. The paper's route-evaluation
  /// experiment assumes a single one-page buffer.
  size_t buffer_pool_pages = 8;
  /// Page replacement policy of the data buffer pool.
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  /// Two-way partitioner used by CCAM's clustering and reorganization.
  PartitionAlgorithm partitioner = PartitionAlgorithm::kRatioCut;
  /// Partition by edge access weights (maximize WCRR) instead of uniform
  /// weights (maximize CRR).
  bool use_access_weights = false;
  /// Minimum page fill the clustering maintains (the paper's MinPgSize =
  /// half a page). Lower values trade space for CRR.
  double cluster_min_fill = 0.5;
  /// Maintain the paged B+ tree secondary index (CCAM's index; tracked
  /// under separate I/O counters because the paper's cost model assumes
  /// index pages are buffered).
  bool maintain_bptree_index = false;
  /// Buffer pool capacity for the index pages (the paper assumes index
  /// pages are buffered; shrink this to study index access cost).
  size_t index_pool_pages = 128;
  /// Worker threads for CCAM's clustering pipeline (static create and
  /// reorganization). 0 = hardware concurrency, 1 = sequential; the page
  /// assignment is bit-identical for every value.
  int num_threads = 0;
  /// Latch shards of the data buffer pool. 0 = automatic (small pools —
  /// including every paper experiment — collapse to a single shard, which
  /// reproduces the classic replacement behavior exactly).
  size_t buffer_pool_shards = 0;
  /// Durable mutations: every maintenance operation runs as a write-ahead
  /// logged transaction (begin, after-images, group commit with a flush
  /// barrier), page checksums are verified on read, and OpenImage replays
  /// committed transactions before trusting the image. Off by default: the
  /// paper's I/O accounting counts each page write exactly once, at the
  /// moment the operation performs it, which the staged commit necessarily
  /// defers (see INTERNALS, "Write-ahead logging & durable recovery").
  bool durability = false;
  /// Build and maintain the paged contraction-hierarchy overlay: create
  /// operations additionally contract the network in nested-dissection
  /// order and persist the shortcut graph on a separate "hier" disk, and
  /// ShortestPathCH answers route queries bidirectionally over it. Off by
  /// default — the paper's experiments (Table 5 / Fig 6) never touch the
  /// overlay, and every mutation invalidates it until the next build.
  bool hierarchy_overlay = false;
  uint64_t seed = 42;
};

/// Abstract access method for networks: the operation set from the paper's
/// Section 1.2 — Create / Find / Insert / Delete plus the network-specific
/// Get-A-successor and Get-successors that dominate the I/O of aggregate
/// queries.
class AccessMethod {
 public:
  virtual ~AccessMethod() = default;

  virtual std::string Name() const = 0;

  /// Bulk-creates the data file from `network`.
  virtual Status Create(const Network& network) = 0;

  /// Retrieves the record of a node (one data-page access unless buffered).
  virtual Result<NodeRecord> Find(NodeId id) = 0;

  /// Retrieves the record of successor `to` of node `from`, checking the
  /// buffered data pages first (zero I/O when clustering co-paged them).
  virtual Result<NodeRecord> GetASuccessor(NodeId from, NodeId to) = 0;

  /// Retrieves records for all successors of `id`, harvesting co-paged and
  /// already-buffered successors without additional I/O.
  virtual Result<std::vector<NodeRecord>> GetSuccessors(NodeId id) = 0;

  /// Inserts a new node whose record carries its adjacency lists; entries
  /// referring to nodes not yet in the file are dropped (they are patched
  /// back when those nodes arrive). Updates the neighbors' lists.
  virtual Status InsertNode(const NodeRecord& record, ReorgPolicy policy) = 0;

  /// Deletes a node, patching the adjacency lists of its neighbors.
  virtual Status DeleteNode(NodeId id, ReorgPolicy policy) = 0;

  virtual Status InsertEdge(NodeId u, NodeId v, float cost,
                            ReorgPolicy policy) = 0;
  virtual Status DeleteEdge(NodeId u, NodeId v, ReorgPolicy policy) = 0;

  /// Data-page I/O counters (the paper's metric). Index I/O is separate.
  /// Returned by value: the counters are atomics, snapshotted on read.
  virtual IoStats DataIoStats() const = 0;
  virtual void ResetIoStats() = 0;

  /// Current node -> data page assignment (the CRR is computed on this).
  virtual const NodePageMap& PageMap() const = 0;

  /// The data buffer pool (experiments vary its capacity and reset it).
  virtual BufferPool* buffer_pool() = 0;

  /// True if the last update operation caused a page split or merge.
  /// Table 5's harness uses this to "ignore page underflows and overflows
  /// ... to filter out the effect of reorganization policies".
  virtual bool LastOpChangedStructure() const = 0;

  /// Number of live data pages.
  virtual size_t NumDataPages() const = 0;

  /// Node-ids visible to queries, ascending. The default derives them from
  /// PageMap(), which is exact for the paged files (the map is the live
  /// set); snapshot sessions override to merge their mutation overlay.
  /// Query operators that enumerate "all nodes" (component sweeps, spatial
  /// index builds) must use this instead of walking PageMap() directly.
  virtual std::vector<NodeId> LiveNodeIds() const {
    std::vector<NodeId> ids;
    ids.reserve(PageMap().size());
    for (const auto& kv : PageMap()) ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Number of node-ids LiveNodeIds() would return (sizing hint).
  virtual size_t NumLiveNodes() const { return PageMap().size(); }

  /// The metrics registry observing this access method, or nullptr when
  /// observability is detached (the default). Query operators open their
  /// "query.<op>" spans against this — a null registry makes every span
  /// inert, preserving the paper's accounting bit for bit.
  virtual MetricsRegistry* metrics() const { return nullptr; }

  /// The lifecycle context (deadline + cancellation token) governing the
  /// request currently executing against this access method, or nullptr
  /// when none is attached (the default). Query operators poll it at
  /// page-I/O and settle-loop boundaries; a null context makes every poll
  /// a single branch, preserving the paper's accounting bit for bit.
  virtual RequestContext* request_context() const { return nullptr; }

  /// --- Contraction-hierarchy overlay --------------------------------------
  /// True when a valid hierarchy overlay is attached (built and not
  /// invalidated by a mutation since). The default access method has none.
  virtual bool HasHierarchy() const { return false; }

  /// Reads one node's hierarchy record (rank plus upward/downward shortcut
  /// arcs) through the overlay's buffer pool; the page access is charged
  /// to HierarchyIoStats(), per session where applicable.
  virtual Result<HierarchyNodeRecord> HierarchyNode(NodeId id) {
    (void)id;
    return Status::NotSupported("no hierarchy overlay");
  }

  /// Overlay-page I/O counters, kept separate from DataIoStats() so the
  /// paper's data-page accounting is untouched by the overlay.
  virtual IoStats HierarchyIoStats() const { return IoStats{}; }
};

}  // namespace ccam

#endif  // CCAM_CORE_ACCESS_METHOD_H_
