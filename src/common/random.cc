#include "src/common/random.h"

#include <cassert>
#include <numeric>

namespace ccam {

Random::Random(uint64_t seed) : state_(0), inc_(0xda3e39cb94b95bdbULL | 1) {
  // PCG32 initialization: advance once with the seed mixed in.
  state_ = 0;
  Next();
  state_ += seed;
  Next();
}

uint32_t Random::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint32_t Random::Uniform(uint32_t n) {
  assert(n > 0);
  // Lemire-style rejection-free-enough bounded generation; bias is
  // negligible for the ranges used here, but reject to be exact.
  uint32_t threshold = (-n) % n;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int Random::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(
                  Uniform(static_cast<uint32_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return Next() * (1.0 / 4294967296.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Random::Sample(uint32_t n, uint32_t k) {
  if (k > n) k = n;
  std::vector<uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0u);
  // Partial Fisher-Yates: the first k entries are the sample.
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t j = i + Uniform(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace ccam
