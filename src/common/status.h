#ifndef CCAM_COMMON_STATUS_H_
#define CCAM_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ccam {

/// Error-code based status object used throughout the library instead of
/// exceptions. Modeled after the RocksDB / Arrow style: cheap to copy in the
/// OK case, carries a code plus a human-readable message otherwise.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kCorruption = 3,
    kIOError = 4,
    kNoSpace = 5,
    kAlreadyExists = 6,
    kNotSupported = 7,
    /// A read transferred fewer bytes than requested (injected or real
    /// partial I/O). Distinct from kIOError so callers can tell a torn
    /// transfer from a failed one.
    kShortRead = 8,
    /// A write persisted only a prefix of the data (torn write).
    kShortWrite = 9,
    /// The serving layer refused the request to protect itself: the
    /// bounded request queue is full, the tenant exceeded its rate
    /// limit, or the service is shutting down. Clients should back off
    /// and retry; the typed code lets them tell load shedding from a
    /// real failure.
    kOverloaded = 10,
    /// The request's deadline elapsed before the operation finished. The
    /// partial work is discarded; the caller may retry with a fresh
    /// deadline. Emitted cooperatively at page-I/O and settle-loop
    /// boundaries, never asynchronously.
    kDeadlineExceeded = 11,
    /// The request was cancelled through its RequestContext before the
    /// operation finished. Terminal: retrying a cancelled request is the
    /// caller's decision, not the library's.
    kCancelled = 12,
    /// The page backing this read is quarantined after repeated checksum
    /// failures. Requests fail fast instead of re-paying the failed I/O;
    /// a scrub/repair pass clears the entry.
    kQuarantined = 13,
  };

  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(Code::kNoSpace, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ShortRead(std::string msg) {
    return Status(Code::kShortRead, std::move(msg));
  }
  static Status ShortWrite(std::string msg) {
    return Status(Code::kShortWrite, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(Code::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status Quarantined(std::string msg) {
    return Status(Code::kQuarantined, std::move(msg));
  }
  /// Builds a status with an arbitrary code (fault injection returns the
  /// configured code of the armed failpoint). `code` must not be kOk.
  static Status FromCode(Code code, std::string msg) {
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsShortRead() const { return code_ == Code::kShortRead; }
  bool IsShortWrite() const { return code_ == Code::kShortWrite; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsQuarantined() const { return code_ == Code::kQuarantined; }

  /// True for statuses where an immediate retry of the same request has a
  /// reasonable chance of succeeding: transient transport-level failures
  /// (kIOError, kShortRead, kOverloaded). Deterministic failures
  /// (kCorruption, kQuarantined, kNotFound, ...) and request-lifecycle
  /// outcomes (kDeadlineExceeded, kCancelled) are terminal — retrying
  /// them re-pays the cost for the same answer.
  bool IsRetryable() const {
    return code_ == Code::kIOError || code_ == Code::kShortRead ||
           code_ == Code::kOverloaded;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a string such as "NotFound: node 42" for logging and tests.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define CCAM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::ccam::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace ccam

#endif  // CCAM_COMMON_STATUS_H_
