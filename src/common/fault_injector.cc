#include "src/common/fault_injector.h"

#include <cstdlib>

namespace ccam {

namespace {

/// FNV-1a — a stable name hash (std::hash is implementation-defined, which
/// would make per-point PCG streams differ across standard libraries).
uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

void FaultInjector::Arm(const std::string& point, const FaultAction& action,
                        const FaultTrigger& trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.action = action;
  p.trigger = trigger;
  p.rng = Random(seed_ ^ HashName(point));
  p.hits = 0;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  log_.clear();
}

std::optional<FaultAction> FaultInjector::Hit(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (suppress_depth_ > 0) return std::nullopt;
  auto it = points_.find(point);
  if (it == points_.end()) return std::nullopt;
  Point& p = it->second;
  uint64_t hit = ++p.hits;
  bool fire = false;
  switch (p.trigger.mode) {
    case FaultTrigger::Mode::kOnce:
      fire = hit == p.trigger.n;
      break;
    case FaultTrigger::Mode::kFrom:
      fire = hit >= p.trigger.n;
      break;
    case FaultTrigger::Mode::kEvery:
      fire = p.trigger.n > 0 && hit % p.trigger.n == 0;
      break;
    case FaultTrigger::Mode::kProb:
      // One Bernoulli draw per hit keeps the per-point stream in lockstep
      // with the hit count, so the firing sequence is seed-deterministic.
      fire = p.rng.Bernoulli(p.trigger.p);
      break;
  }
  if (!fire) return std::nullopt;
  log_.push_back({point, hit});
  return p.action;
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<FaultFiring> FaultInjector::FiringLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

void FaultInjector::Suppress() {
  std::lock_guard<std::mutex> lock(mu_);
  ++suppress_depth_;
}

void FaultInjector::Unsuppress() {
  std::lock_guard<std::mutex> lock(mu_);
  --suppress_depth_;
}

FaultInjector::SuppressScope::SuppressScope(FaultInjector* injector)
    : injector_(injector) {
  if (injector_ != nullptr) injector_->Suppress();
}

FaultInjector::SuppressScope::~SuppressScope() {
  if (injector_ != nullptr) injector_->Unsuppress();
}

Status FaultInjector::Configure(const std::string& spec) {
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument("fault schedule '" + spec + "': " + why);
  };
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail("entry '" + entry + "' is not <point>=<action>");
    }
    std::string point = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    FaultTrigger trigger = FaultTrigger::Once(1);
    size_t at = rest.rfind('@');
    if (at != std::string::npos) {
      std::string t = rest.substr(at + 1);
      rest.resize(at);
      if (t.empty()) return fail("empty trigger for '" + point + "'");
      if (t[0] == 'p') {
        char* parse_end = nullptr;
        double p = std::strtod(t.c_str() + 1, &parse_end);
        if (parse_end == nullptr || *parse_end != '\0' || p < 0.0 || p > 1.0) {
          return fail("bad probability trigger '@" + t + "'");
        }
        trigger = FaultTrigger::Prob(p);
      } else {
        bool every = t.rfind("every", 0) == 0;
        std::string num = every ? t.substr(5) : t;
        bool from = !num.empty() && num.back() == '+';
        if (from) num.pop_back();
        char* parse_end = nullptr;
        uint64_t n = std::strtoull(num.c_str(), &parse_end, 10);
        if (num.empty() || parse_end == nullptr || *parse_end != '\0' ||
            n == 0 || (every && from)) {
          return fail("bad trigger '@" + t + "'");
        }
        trigger = every ? FaultTrigger::Every(n)
                        : (from ? FaultTrigger::From(n)
                                : FaultTrigger::Once(n));
      }
    }

    FaultAction action;
    std::string kind = rest;
    std::string arg;
    size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      kind = rest.substr(0, colon);
      arg = rest.substr(colon + 1);
    }
    auto parse_bytes = [&](size_t* out) {
      char* parse_end = nullptr;
      uint64_t v = std::strtoull(arg.c_str(), &parse_end, 10);
      if (arg.empty() || parse_end == nullptr || *parse_end != '\0') {
        return false;
      }
      *out = static_cast<size_t>(v);
      return true;
    };
    if (kind == "error") {
      action.kind = FaultAction::Kind::kError;
      if (arg.empty() || arg == "io") {
        action.code = Status::Code::kIOError;
      } else if (arg == "corruption") {
        action.code = Status::Code::kCorruption;
      } else if (arg == "notfound") {
        action.code = Status::Code::kNotFound;
      } else {
        return fail("unknown error code '" + arg + "'");
      }
    } else if (kind == "short" || kind == "torn") {
      action.kind = FaultAction::Kind::kShort;
      if (!parse_bytes(&action.bytes)) {
        return fail(kind + " needs ':<bytes>'");
      }
    } else if (kind == "nospace") {
      action.kind = FaultAction::Kind::kNoSpace;
      if (!arg.empty()) return fail("nospace takes no argument");
    } else if (kind == "crash") {
      action.kind = FaultAction::Kind::kCrash;
      if (!parse_bytes(&action.bytes)) return fail("crash needs ':<bytes>'");
    } else {
      return fail("unknown action '" + kind + "'");
    }
    Arm(point, action, trigger);
  }
  return Status::OK();
}

const std::vector<FailpointInfo>& FaultInjector::Catalog() {
  // Hand-maintained: the injector has no central registration, so this is
  // the authoritative list of names code actually passes to Hit().
  static const std::vector<FailpointInfo> kCatalog = {
      {"disk.read", "DiskManager::ReadPage (data disk)",
       "error/short/crash; short fills the buffer tail with garbage"},
      {"disk.write", "DiskManager::WritePage (data disk)",
       "error/short(torn)/nospace/crash; torn keeps the page's old tail"},
      {"disk.alloc", "DiskManager::AllocatePage (data disk)",
       "error/nospace"},
      {"disk.free", "DiskManager::FreePage (data disk)", "error"},
      {"index.read", "ReadPage on the index disk (NetworkFile B+-tree)",
       "same actions as disk.read"},
      {"index.write", "WritePage on the index disk",
       "same actions as disk.write"},
      {"index.alloc", "AllocatePage on the index disk", "error/nospace"},
      {"index.free", "FreePage on the index disk", "error"},
      {"hier.read", "ReadPage on the hierarchy-overlay disk",
       "same actions as disk.read"},
      {"hier.write", "WritePage on the hierarchy-overlay disk",
       "same actions as disk.write"},
      {"hier.alloc", "AllocatePage on the hierarchy-overlay disk",
       "error/nospace"},
      {"hier.free", "FreePage on the hierarchy-overlay disk", "error"},
      {"wal.append", "Wal::Append record encode+write (data WAL)",
       "error/short(torn record tail)/nospace/crash"},
      {"wal.flush", "Wal::Flush durability barrier (data WAL)",
       "error/crash"},
      {"hier.wal.append", "Wal::Append on the hierarchy WAL",
       "same actions as wal.append"},
      {"hier.wal.flush", "Wal::Flush on the hierarchy WAL",
       "same actions as wal.flush"},
      {"snapshot.log.append", "DeltaLog::Append frame write",
       "error/short(torn frame tail)/nospace/crash"},
      {"snapshot.log.flush", "DeltaLog::Flush durability barrier",
       "error/crash"},
      {"snapshot.build", "SnapshotManager snapshot-image build "
       "(hit before and after the image write)",
       "error/crash(torn image)"},
      {"snapshot.publish", "SnapshotManager publish "
       "(hit before tmp write, before rename, after commit point)",
       "error/crash(torn manifest)"},
      {"snapshot.retire", "SnapshotManager version retirement "
       "(hit before unlink, around manifest rewrite, after rename)",
       "error/crash(torn manifest)"},
  };
  return kCatalog;
}

}  // namespace ccam
