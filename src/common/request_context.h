#ifndef CCAM_COMMON_REQUEST_CONTEXT_H_
#define CCAM_COMMON_REQUEST_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace ccam {

/// Per-request lifecycle token: an absolute steady-clock deadline plus a
/// cooperative cancellation flag. A RequestContext is attached to a session
/// (QuerySession / SnapshotSession) for the duration of one request; the
/// query operators poll `Check()` at page-I/O and settle-loop boundaries and
/// return a typed DeadlineExceeded / Cancelled status instead of running to
/// completion.
///
/// Cancellation is cooperative: `Cancel()` only raises a flag — nothing is
/// interrupted asynchronously, so operators always unwind through their
/// normal return paths with invariants intact. Cancellation takes precedence
/// over deadline expiry when both apply (the caller explicitly asked).
///
/// Thread model: `Cancel()` may be called from any thread (it is how a
/// coordinator reaches into a running worker); `Check()` is called from the
/// single thread executing the request. Both are lock-free.
class RequestContext {
 public:
  /// Microseconds on the steady clock — the same scale every deadline in
  /// this file uses. Monotonic, unaffected by wall-clock adjustments.
  static int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// No deadline, not cancelled.
  RequestContext() = default;

  /// Absolute deadline in NowMicros() scale; 0 means "no deadline".
  explicit RequestContext(int64_t deadline_us) : deadline_us_(deadline_us) {}

  /// Context that expires `budget_us` from now.
  static RequestContext WithTimeout(int64_t budget_us) {
    return RequestContext(NowMicros() + budget_us);
  }

  /// Sets (or clears, with 0) the absolute deadline. Not thread-safe
  /// against a concurrent Check(); set it before handing the context to
  /// the executing thread.
  void SetDeadline(int64_t deadline_us) { deadline_us_ = deadline_us; }
  int64_t deadline_us() const { return deadline_us_; }

  /// Raises the cancellation flag. Safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once the deadline (if any) has passed.
  bool expired() const {
    return deadline_us_ != 0 && NowMicros() >= deadline_us_;
  }

  /// The cooperative poll: OK while the request may keep running, a typed
  /// terminal status once it must stop. Cancellation wins over deadline
  /// expiry when both apply.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (expired()) {
      return Status::DeadlineExceeded(
          "deadline passed " +
          std::to_string(NowMicros() - deadline_us_) + "us ago");
    }
    return Status::OK();
  }

  /// Rearms the context for reuse (serve workers keep one per worker and
  /// re-stamp it per batch instead of allocating).
  void Reset(int64_t deadline_us = 0) {
    deadline_us_ = deadline_us;
    cancelled_.store(false, std::memory_order_relaxed);
  }

 private:
  int64_t deadline_us_ = 0;
  std::atomic<bool> cancelled_{false};
};

}  // namespace ccam

#endif  // CCAM_COMMON_REQUEST_CONTEXT_H_
