#ifndef CCAM_COMMON_THREAD_POOL_H_
#define CCAM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccam {

/// A small fixed-size thread pool draining one shared FIFO queue — no
/// work stealing, no exceptions. Tasks are plain `std::function<void()>`
/// thunks; error propagation is the submitter's job (tasks write their
/// Status / results into slots the submitter owns). Tasks may Submit()
/// further tasks, which is what tree-shaped workloads such as the
/// recursive-bisection clustering need. The destructor drains the queue
/// and joins every worker.
///
/// Determinism contract: the pool makes no ordering guarantees. Callers
/// that need run-to-run (and 1-vs-N-thread) reproducibility must make
/// every task's output depend only on the task's own input — see
/// ClusterNodesIntoPages, which derives per-subproblem seeds from the
/// subproblem's node content instead of from shared counters.
class ThreadPool {
 public:
  /// Starts the workers. `num_threads` <= 0 selects HardwareThreads().
  explicit ThreadPool(int num_threads);

  /// Drains the queue (all submitted tasks run) and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from worker threads. Tasks must not
  /// block waiting on other tasks (the pool has no dependency tracking).
  void Submit(std::function<void()> task);

  /// Blocks until no task is queued or running. With tasks that spawn
  /// subtasks this is a fixpoint wait: it returns only once the whole
  /// task tree has drained.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int HardwareThreads();

  /// Resolves a `num_threads`-style option: <= 0 -> HardwareThreads().
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks or stop
  std::condition_variable idle_cv_;  // WaitIdle waits for quiescence
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ccam

#endif  // CCAM_COMMON_THREAD_POOL_H_
