#ifndef CCAM_COMMON_METRICS_H_
#define CCAM_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ccam {

/// Observability primitives for the storage/query stack.
///
/// Design contract (see INTERNALS, "Observability"):
///  - *Zero cost when disabled.* Every instrumented component holds plain
///    pointers to its metric objects, null until a MetricsRegistry is
///    attached. The fault-free, metrics-free hot path therefore pays one
///    null-pointer test per instrumentation site — no clock reads, no
///    atomics, no locks — and the paper's page-access accounting
///    (Table 5 / Fig 6) is bit-identical with or without the subsystem
///    compiled in, attached, or detached.
///  - *Lock-free when enabled.* Counter/gauge updates and histogram
///    records are relaxed atomic operations on objects with stable
///    addresses; registration (name -> object) is the only locked path
///    and happens once per name.
///  - *Names are a flat catalog*, "<subsystem>.<event>" for counters and
///    "<subsystem>.<event>_us" for latency histograms: `buffer_pool.hit`,
///    `disk.read_us`, `wal.flush_us`, `query.route_eval_us`, ...

/// Monotonic event counter. Inc() is a relaxed atomic add: safe from any
/// number of threads, never a synchronization point.
class MetricCounter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (pool residency, open sessions, ...).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram for latency-like values (canonically
/// microseconds). The bucket layout is static and shared by every
/// histogram: two buckets per octave — upper bounds 1, 2, 3, 4, 6,
/// 8, 12, 16, 24, ... — so any recorded value lands within ~33% of its true
/// magnitude, which is plenty for p50/p95/p99 over I/O latencies, and
/// recording never allocates or locks. Bucket i covers
/// (BucketUpperBound(i-1), BucketUpperBound(i)]; bucket 0 covers [0, 1].
class MetricHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Upper bound of bucket `i` (the last bucket absorbs everything).
  static uint64_t BucketUpperBound(int i);
  /// Index of the bucket a value lands in.
  static int BucketIndex(uint64_t value);

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Percentile estimate, `p` in (0, 100]: the upper bound of the first
  /// bucket whose cumulative count reaches ceil(p/100 * count). A value
  /// recorded exactly at a bucket bound is reported exactly (the bound is
  /// the bucket's inclusive upper edge). Returns 0 on an empty histogram.
  /// Concurrent Record()s may make the snapshot slightly stale; the
  /// result is always a valid bucket bound.
  uint64_t Percentile(double p) const;

  double Mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Fixed-capacity ring buffer of trace events — the flight recorder the
/// crash harness dumps when a run fails. Event names must be string
/// literals (or otherwise outlive the ring): the ring stores the pointer,
/// never a copy, so recording does not allocate. Recording is mutex-
/// serialized; tracing is meant for post-mortem forensics, not for the
/// metrics hot path, and is off (capacity 0) unless explicitly enabled.
class TraceRing {
 public:
  struct Event {
    const char* name = nullptr;
    /// Microseconds since the ring was created (or ResetEpoch()).
    uint64_t at_us = 0;
    /// Span duration; 0 for instantaneous events.
    uint64_t dur_us = 0;
    /// Free-form tag (page id, node id, kill point, ...).
    uint64_t arg = 0;
  };

  TraceRing() : epoch_(std::chrono::steady_clock::now()) {}

  /// Enables the ring with space for `capacity` events (0 disables and
  /// drops any recorded history).
  void Enable(size_t capacity);
  bool enabled() const;

  void Record(const char* name, uint64_t dur_us = 0, uint64_t arg = 0);

  /// The buffered events, oldest first.
  std::vector<Event> Events() const;

  /// Writes the buffered events to `out`, oldest first, one per line.
  void Dump(std::FILE* out) const;

  /// Events recorded since Enable() (including any the ring overwrote).
  uint64_t recorded() const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Event> events_;
  size_t capacity_ = 0;
  size_t next_ = 0;      // ring cursor
  uint64_t recorded_ = 0;
};

/// Name -> metric catalog. Get*() registers on first use and returns a
/// stable pointer: components look their metrics up once (at attach time)
/// and afterwards update them lock-free. Lookup takes the registry mutex
/// but never invalidates previously returned pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* GetCounter(std::string_view name);
  MetricGauge* GetGauge(std::string_view name);
  MetricHistogram* GetHistogram(std::string_view name);

  /// The registry's trace ring (disabled until TraceRing::Enable).
  TraceRing* trace() { return &trace_; }

  /// Zeroes every registered metric (the catalog itself is kept).
  void Reset();

  /// One exported series. Histograms carry their summary, not the raw
  /// buckets; the JSON export includes the buckets.
  struct Sample {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    uint64_t count = 0;  // counter value / histogram count
    int64_t gauge = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0, p95 = 0, p99 = 0;
  };

  /// Every registered series, sorted by name.
  std::vector<Sample> Samples() const;

  /// Markdown-ish table of every series, for tools/stats and debugging.
  void DumpText(std::FILE* out) const;

  /// The full catalog as a JSON object: {"counters": {...}, "gauges":
  /// {...}, "histograms": {"name": {"count":, "sum":, "p50":, "p95":,
  /// "p99":, "buckets": [[bound, count], ...nonzero only]}}.
  std::string ExportJson() const;

 private:
  mutable std::mutex mu_;
  // std::map keeps exports sorted; node stability keeps pointers valid.
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
      histograms_;
  TraceRing trace_;
};

/// RAII span: records the scope's wall-clock duration (µs) into a
/// histogram on destruction. A null histogram makes the timer fully inert
/// — no clock read on either end.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(MetricHistogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) hist_->Record(ElapsedMicros());
  }

  uint64_t ElapsedMicros() const {
    if (hist_ == nullptr) return 0;
    auto dt = std::chrono::steady_clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
  }

 private:
  MetricHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII query-operator span: on entry bumps "<op>" and starts the clock;
/// on exit records the elapsed µs into "<op>_us" and appends a trace
/// event when the registry's ring is enabled. A null registry is fully
/// inert (one branch, no lookups, no clock). `op` must be a string
/// literal ("query.route_eval", ...).
class QuerySpan {
 public:
  QuerySpan(MetricsRegistry* registry, const char* op);
  QuerySpan(const QuerySpan&) = delete;
  QuerySpan& operator=(const QuerySpan&) = delete;
  ~QuerySpan();

 private:
  MetricsRegistry* registry_ = nullptr;
  const char* op_ = nullptr;
  MetricHistogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ccam

#endif  // CCAM_COMMON_METRICS_H_
