#ifndef CCAM_COMMON_FAULT_INJECTOR_H_
#define CCAM_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace ccam {

/// What an armed failpoint injects when its trigger fires.
struct FaultAction {
  enum class Kind {
    /// Fail the operation outright with `code`.
    kError,
    /// Partial transfer: only the first `bytes` bytes move. On a read this
    /// is a short read (the tail of the caller's buffer is filled with a
    /// garbage pattern); on a write it is a torn write (the page keeps its
    /// old tail).
    kShort,
    /// Device-full: fail with kNoSpace.
    kNoSpace,
    /// Simulated crash: a torn write of `bytes` bytes lands, then the
    /// device halts — every subsequent simulated I/O fails until
    /// DiskManager::ClearHalt(). Models killing the process mid-write.
    kCrash,
  };
  Kind kind = Kind::kError;
  Status::Code code = Status::Code::kIOError;
  size_t bytes = 0;  // partial-transfer size for kShort / kCrash
};

/// When an armed failpoint fires. Hits are counted from the moment the
/// point is armed; the first evaluation after arming is hit 1.
struct FaultTrigger {
  enum class Mode {
    kOnce,   // exactly on hit `n`, once
    kFrom,   // on every hit >= `n` (a permanent fault)
    kEvery,  // on hits n, 2n, 3n, ... (a periodic transient fault)
    kProb,   // independently with probability `p` per hit (PCG-seeded)
  };
  static FaultTrigger Once(uint64_t n) { return {Mode::kOnce, n, 0.0}; }
  static FaultTrigger From(uint64_t n) { return {Mode::kFrom, n, 0.0}; }
  static FaultTrigger Every(uint64_t n) { return {Mode::kEvery, n, 0.0}; }
  static FaultTrigger Prob(double p) { return {Mode::kProb, 0, p}; }

  Mode mode = Mode::kOnce;
  uint64_t n = 1;
  double p = 0.0;
};

/// One row of the failpoint catalog (FaultInjector::Catalog): a failpoint
/// name as Hit() declares it, the source site that evaluates it, and what
/// the injected fault models there. The injector itself has no central
/// registration — failpoints exist wherever code calls Hit() — so the
/// catalog is the maintained authoring reference for chaos schedules
/// (tools/crashsim --list-failpoints prints it).
struct FailpointInfo {
  const char* name;
  const char* site;
  const char* notes;
};

/// One entry of the firing log: which failpoint fired on which hit.
struct FaultFiring {
  std::string point;
  uint64_t hit = 0;

  friend bool operator==(const FaultFiring& a, const FaultFiring& b) {
    return a.point == b.point && a.hit == b.hit;
  }
};

/// Deterministic fault-injection registry. Code under test declares named
/// failpoints by calling Hit("name") at the would-fail site; tests arm a
/// failpoint with an action (what to inject) and a trigger (when). Every
/// decision is deterministic: probabilistic triggers draw from a per-point
/// PCG stream seeded from (injector seed, failpoint name), so the firing
/// sequence depends only on the seed and the hit sequence — never on
/// arming order or on other failpoints.
///
/// Thread safety: all methods are mutex-protected; Hit() may be called
/// from concurrent I/O paths. An unarmed failpoint costs one map lookup
/// under the mutex; code that wants zero overhead when faults are off
/// should gate on a null injector pointer instead (see DiskManager).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms, resetting the hit count) a failpoint.
  void Arm(const std::string& point, const FaultAction& action,
           const FaultTrigger& trigger);
  void Disarm(const std::string& point);

  /// Disarms every failpoint and clears hit counts and the firing log.
  void Reset();

  /// Arms failpoints from a schedule string — a comma-separated list of
  ///   <point>=<action>[@<trigger>]
  /// actions:  error[:<code>]   (code: io, corruption, notfound; default io)
  ///           short:<bytes>  |  torn:<bytes>  |  nospace  |  crash:<bytes>
  /// triggers: @<n> (once, on hit n)   @<n>+ (from hit n on)
  ///           @every<n>               @p<prob>        (default: @1)
  /// Example: "disk.write=crash:96@17,disk.read=error@p0.01".
  Status Configure(const std::string& spec);

  /// Evaluates the failpoint: counts a hit and returns the armed action if
  /// the trigger fires, nullopt otherwise (or when the point is unarmed /
  /// the injector is suppressed).
  std::optional<FaultAction> Hit(const std::string& point);

  /// Hits of `point` since it was armed (0 when unarmed).
  uint64_t HitCount(const std::string& point) const;

  /// The deterministic firing sequence so far.
  std::vector<FaultFiring> FiringLog() const;

  /// The full failpoint catalog — every name some device declares via
  /// Hit(), with its site and semantics. Keep in sync when adding Hit()
  /// call sites (fault_injector_test cross-checks the known prefixes).
  static const std::vector<FailpointInfo>& Catalog();

  uint64_t seed() const { return seed_; }

  /// RAII suppression: within the scope every Hit() reports no fault and
  /// counts no hit — used e.g. to capture a post-crash disk image without
  /// the snapshot itself faulting. Nests; not per-thread (suppression is
  /// meant for single-threaded control sections of a harness).
  class SuppressScope {
   public:
    explicit SuppressScope(FaultInjector* injector);
    ~SuppressScope();
    SuppressScope(const SuppressScope&) = delete;
    SuppressScope& operator=(const SuppressScope&) = delete;

   private:
    FaultInjector* injector_;
  };

 private:
  struct Point {
    FaultAction action;
    FaultTrigger trigger;
    Random rng{0};
    uint64_t hits = 0;
  };

  void Suppress();
  void Unsuppress();

  mutable std::mutex mu_;
  uint64_t seed_;
  int suppress_depth_ = 0;
  std::unordered_map<std::string, Point> points_;
  std::vector<FaultFiring> log_;
};

}  // namespace ccam

#endif  // CCAM_COMMON_FAULT_INJECTOR_H_
