#include "src/common/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cinttypes>

namespace ccam {

namespace {

/// Static bucket bounds, two per octave: 1, 2, 3, 4, 6, 8, 12, 16, 24,
/// ... — strictly increasing, so any value is bucketed within ~33% of its
/// magnitude. The last bound is +inf (the overflow bucket).
constexpr std::array<uint64_t, MetricHistogram::kNumBuckets> BuildBounds() {
  std::array<uint64_t, MetricHistogram::kNumBuckets> bounds{};
  bounds[0] = 1;
  uint64_t base = 2;
  int i = 1;
  while (i < MetricHistogram::kNumBuckets) {
    bounds[i++] = base;
    if (i < MetricHistogram::kNumBuckets) bounds[i++] = base + base / 2;
    base *= 2;
  }
  bounds[MetricHistogram::kNumBuckets - 1] = ~uint64_t{0};
  return bounds;
}

constexpr auto kBounds = BuildBounds();

}  // namespace

uint64_t MetricHistogram::BucketUpperBound(int i) { return kBounds[i]; }

int MetricHistogram::BucketIndex(uint64_t value) {
  auto it = std::lower_bound(kBounds.begin(), kBounds.end(), value);
  return static_cast<int>(it - kBounds.begin());
}

void MetricHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t MetricHistogram::Percentile(double p) const {
  // Snapshot the buckets once; derive the total from the snapshot so a
  // concurrent Record() cannot push the target rank past the snapshot.
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return kBounds[i];
  }
  return kBounds[kNumBuckets - 1];
}

void MetricHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

void TraceRing::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  events_.clear();
  events_.reserve(capacity);
  next_ = 0;
  recorded_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

bool TraceRing::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ > 0;
}

void TraceRing::Record(const char* name, uint64_t dur_us, uint64_t arg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  Event ev;
  ev.name = name;
  ev.at_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  ev.dur_us = dur_us;
  ev.arg = arg;
  if (events_.size() < capacity_) {
    events_.push_back(ev);
  } else {
    events_[next_] = ev;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TraceRing::Event> TraceRing::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(events_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(next_ + i) % events_.size()]);
  }
  return out;
}

void TraceRing::Dump(std::FILE* out) const {
  std::vector<Event> events = Events();
  uint64_t total = recorded();
  std::fprintf(out, "trace ring: %zu buffered of %" PRIu64 " recorded\n",
               events.size(), total);
  for (const Event& ev : events) {
    std::fprintf(out, "  +%10" PRIu64 "us %-32s dur=%" PRIu64 "us arg=%" PRIu64
                 "\n",
                 ev.at_us, ev.name, ev.dur_us, ev.arg);
  }
}

uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricCounter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return it->second.get();
}

MetricGauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  }
  return it->second.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Sample s;
    s.name = name;
    s.kind = Sample::Kind::kCounter;
    s.count = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    Sample s;
    s.name = name;
    s.kind = Sample::Kind::kGauge;
    s.gauge = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Sample s;
    s.name = name;
    s.kind = Sample::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.p50 = h->Percentile(50);
    s.p95 = h->Percentile(95);
    s.p99 = h->Percentile(99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::DumpText(std::FILE* out) const {
  std::vector<Sample> samples = Samples();
  std::fprintf(out, "%-32s %-9s %12s %12s %8s %8s %8s\n", "series", "kind",
               "count/value", "sum", "p50", "p95", "p99");
  for (const Sample& s : samples) {
    switch (s.kind) {
      case Sample::Kind::kCounter:
        std::fprintf(out, "%-32s %-9s %12" PRIu64 "\n", s.name.c_str(),
                     "counter", s.count);
        break;
      case Sample::Kind::kGauge:
        std::fprintf(out, "%-32s %-9s %12" PRId64 "\n", s.name.c_str(),
                     "gauge", s.gauge);
        break;
      case Sample::Kind::kHistogram:
        std::fprintf(out,
                     "%-32s %-9s %12" PRIu64 " %12" PRIu64 " %8" PRIu64
                     " %8" PRIu64 " %8" PRIu64 "\n",
                     s.name.c_str(), "histogram", s.count, s.sum, s.p50,
                     s.p95, s.p99);
        break;
    }
  }
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + std::to_string(h->sum()) +
           ", \"p50\": " + std::to_string(h->Percentile(50)) +
           ", \"p95\": " + std::to_string(h->Percentile(95)) +
           ", \"p99\": " + std::to_string(h->Percentile(99)) +
           ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < MetricHistogram::kNumBuckets; ++i) {
      uint64_t n = h->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + std::to_string(MetricHistogram::BucketUpperBound(i)) +
             ", " + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// QuerySpan
// ---------------------------------------------------------------------------

QuerySpan::QuerySpan(MetricsRegistry* registry, const char* op)
    : registry_(registry), op_(op) {
  if (registry_ == nullptr) return;
  registry_->GetCounter(op_)->Inc();
  hist_ = registry_->GetHistogram(std::string(op_) + "_us");
  start_ = std::chrono::steady_clock::now();
}

QuerySpan::~QuerySpan() {
  if (registry_ == nullptr) return;
  uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  hist_->Record(us);
  registry_->trace()->Record(op_, us);
}

}  // namespace ccam
