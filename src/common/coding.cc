#include "src/common/coding.h"

#include <array>

namespace ccam {

namespace {

/// 8 x 256 lookup tables for slicing-by-8 CRC32C, generated once at
/// startup from the reflected Castagnoli polynomial.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 8) {
    uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                          static_cast<uint32_t>(p[1]) << 8 |
                          static_cast<uint32_t>(p[2]) << 16 |
                          static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][low & 0xff] ^ t[6][(low >> 8) & 0xff] ^
          t[5][(low >> 16) & 0xff] ^ t[4][low >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFloat(std::string* dst, float value) {
  char buf[4];
  EncodeFloat(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutDouble(std::string* dst, double value) {
  char buf[8];
  EncodeDouble(buf, value);
  dst->append(buf, sizeof(buf));
}

bool Decoder::Check(size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  return true;
}

uint16_t Decoder::GetFixed16() {
  if (!Check(2)) return 0;
  uint16_t v = DecodeFixed16(data_ + pos_);
  pos_ += 2;
  return v;
}

uint32_t Decoder::GetFixed32() {
  if (!Check(4)) return 0;
  uint32_t v = DecodeFixed32(data_ + pos_);
  pos_ += 4;
  return v;
}

uint64_t Decoder::GetFixed64() {
  if (!Check(8)) return 0;
  uint64_t v = DecodeFixed64(data_ + pos_);
  pos_ += 8;
  return v;
}

float Decoder::GetFloat() {
  if (!Check(4)) return 0.0f;
  float v = DecodeFloat(data_ + pos_);
  pos_ += 4;
  return v;
}

double Decoder::GetDouble() {
  if (!Check(8)) return 0.0;
  double v = DecodeDouble(data_ + pos_);
  pos_ += 8;
  return v;
}

void Decoder::GetBytes(char* out, size_t n) {
  if (!Check(n)) return;
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

}  // namespace ccam
