#include "src/common/coding.h"

namespace ccam {

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFloat(std::string* dst, float value) {
  char buf[4];
  EncodeFloat(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutDouble(std::string* dst, double value) {
  char buf[8];
  EncodeDouble(buf, value);
  dst->append(buf, sizeof(buf));
}

bool Decoder::Check(size_t n) {
  if (!ok_ || pos_ + n > size_) {
    ok_ = false;
    return false;
  }
  return true;
}

uint16_t Decoder::GetFixed16() {
  if (!Check(2)) return 0;
  uint16_t v = DecodeFixed16(data_ + pos_);
  pos_ += 2;
  return v;
}

uint32_t Decoder::GetFixed32() {
  if (!Check(4)) return 0;
  uint32_t v = DecodeFixed32(data_ + pos_);
  pos_ += 4;
  return v;
}

uint64_t Decoder::GetFixed64() {
  if (!Check(8)) return 0;
  uint64_t v = DecodeFixed64(data_ + pos_);
  pos_ += 8;
  return v;
}

float Decoder::GetFloat() {
  if (!Check(4)) return 0.0f;
  float v = DecodeFloat(data_ + pos_);
  pos_ += 4;
  return v;
}

double Decoder::GetDouble() {
  if (!Check(8)) return 0.0;
  double v = DecodeDouble(data_ + pos_);
  pos_ += 8;
  return v;
}

void Decoder::GetBytes(char* out, size_t n) {
  if (!Check(n)) return;
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

}  // namespace ccam
