#ifndef CCAM_COMMON_RESULT_H_
#define CCAM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace ccam {

/// A Status-or-value type: either holds a value of type T, or a non-OK
/// Status explaining why the value is absent. Dereferencing a non-OK Result
/// is a programming error (checked with assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure case).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when the result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, returning the error
/// status from the enclosing function when the expression failed.
#define CCAM_ASSIGN_OR_RETURN(lhs, expr)          \
  do {                                            \
    auto _res = (expr);                           \
    if (!_res.ok()) return _res.status();         \
    lhs = std::move(_res).value();                \
  } while (false)

}  // namespace ccam

#endif  // CCAM_COMMON_RESULT_H_
