#ifndef CCAM_COMMON_RANDOM_H_
#define CCAM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ccam {

/// Deterministic PCG32 pseudo-random generator. All experiments in this
/// repository are seeded, so results are bit-reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Returns a uniformly distributed 32-bit value.
  uint32_t Next();

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint32_t Uniform(uint32_t n);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Uniform(static_cast<uint32_t>(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n).
  std::vector<uint32_t> Sample(uint32_t n, uint32_t k);

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace ccam

#endif  // CCAM_COMMON_RANDOM_H_
