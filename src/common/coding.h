#ifndef CCAM_COMMON_CODING_H_
#define CCAM_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ccam {

/// Little-endian fixed-width encoding helpers used by the on-page record and
/// index formats. All encodings are explicit little-endian regardless of the
/// host byte order so that simulated disk images are portable.

inline void EncodeFixed16(char* dst, uint16_t value) {
  dst[0] = static_cast<char>(value & 0xff);
  dst[1] = static_cast<char>((value >> 8) & 0xff);
}

inline void EncodeFixed32(char* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

inline uint16_t DecodeFixed16(const char* src) {
  return static_cast<uint16_t>(static_cast<unsigned char>(src[0])) |
         static_cast<uint16_t>(static_cast<unsigned char>(src[1])) << 8;
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(src[i]);
  }
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(src[i]);
  }
  return value;
}

/// Encodes an IEEE-754 float/double through its bit pattern.
inline void EncodeFloat(char* dst, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  EncodeFixed32(dst, bits);
}

inline float DecodeFloat(const char* src) {
  uint32_t bits = DecodeFixed32(src);
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

inline void EncodeDouble(char* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  EncodeFixed64(dst, bits);
}

inline double DecodeDouble(const char* src) {
  uint64_t bits = DecodeFixed64(src);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `n` bytes — the checksum of the page seals and the WAL record frames.
/// Software slicing-by-8; the value matches hardware SSE4.2 CRC32C.
uint32_t Crc32c(const void* data, size_t n);

/// Incremental form: extends a running CRC32C (`crc` is the value returned
/// by a previous call, or 0 to start).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Append-style helpers for building byte strings.
void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutFloat(std::string* dst, float value);
void PutDouble(std::string* dst, double value);

/// Cursor over a byte buffer for sequential decoding. The caller is expected
/// to know the layout; Remaining() guards against overruns.
class Decoder {
 public:
  Decoder(const char* data, size_t size) : data_(data), size_(size) {}

  size_t Remaining() const { return size_ - pos_; }
  bool Ok() const { return ok_; }

  uint16_t GetFixed16();
  uint32_t GetFixed32();
  uint64_t GetFixed64();
  float GetFloat();
  double GetDouble();
  /// Copies `n` raw bytes into `out`; marks the decoder failed on overrun.
  void GetBytes(char* out, size_t n);

 private:
  bool Check(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ccam

#endif  // CCAM_COMMON_CODING_H_
