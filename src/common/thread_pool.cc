#include "src/common/thread_pool.h"

#include <utility>

namespace ccam {

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::ResolveThreadCount(int requested) {
  return requested <= 0 ? HardwareThreads() : requested;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace ccam
