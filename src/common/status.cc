#include "src/common/status.h"

namespace ccam {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNoSpace:
      return "NoSpace";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kShortRead:
      return "ShortRead";
    case Status::Code::kShortWrite:
      return "ShortWrite";
    case Status::Code::kOverloaded:
      return "Overloaded";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kQuarantined:
      return "Quarantined";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace ccam
