// ccam_cli — command-line front end for the CCAM library.
//
// Usage:
//   ccam_cli generate --out map.net [--rows 33] [--cols 33] [--seed 1995]
//   ccam_cli create   --net map.net --image file.img [--page-size 1024]
//                     [--partitioner ratio-cut|fm|kl|random]
//                     [--mode static|incremental] [--weighted]
//   ccam_cli stats    --net map.net --image file.img [--page-size 1024]
//   ccam_cli find     --net map.net --image file.img --id 42
//   ccam_cli route    --net map.net --image file.img --from 0 --to 100
//   ccam_cli window   --net map.net --image file.img
//                     --xmin 0 --ymin 0 --xmax 500 --ymax 500
//   ccam_cli replay   --net map.net --image file.img --trace ops.txt
//                     [--policy first-order|second-order|higher-order]
//   ccam_cli serve    --net map.net --image file.img [--workers 8]
//                     [--qps 2000] [--duration-ms 1000] [--tenants 4]
//                     [--theta 0.9] [--rate-limit 0] [--no-batching]
//                     (open-loop load against the in-process QueryService;
//                     reports qps, latency percentiles, reject rate,
//                     batch occupancy, and the conservation check)
//   ccam_cli shard    --net map.net [--shards 4] [--routes 64]
//                     (coarse-partitions the network into N shard files,
//                     evaluates sample routes sharded vs unsharded, and
//                     reports per-shard occupancy, halo counts and cut
//                     crossings; nonzero exit on any result mismatch)
//
// The `.net` file is the text network format (src/graph/graph_io.h); the
// `.img` file is a CCAM disk image (NetworkFile::SaveImage).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "src/core/ccam.h"
#include "src/core/file_stats.h"
#include "src/graph/generator.h"
#include "src/graph/graph_io.h"
#include "src/query/search.h"
#include "src/query/spatial.h"
#include "src/query/trace.h"
#include "src/serve/loadgen.h"
#include "src/serve/query_service.h"
#include "src/shard/shard_query.h"

namespace ccam {
namespace cli {
namespace {

/// Minimal --flag value parser; flags may appear in any order.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--weighted") == 0 ||
          std::strcmp(argv[i], "--no-batching") == 0) {
        flags_[argv[i] + 2] = true;  // boolean flag, no value
        continue;
      }
      if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
        values_[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        std::exit(2);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  /// Strict numeric parsing: atol/atof silently read garbage as 0, which
  /// let a typo'd flag value run a different query and exit 0. A value
  /// that does not parse in full is a usage error (exit 2, stderr).
  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "flag --%s: '%s' is not an integer\n",
                   key.c_str(), it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "flag --%s: '%s' is not a number\n", key.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  bool GetFlag(const std::string& key) const { return flags_.count(key) > 0; }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
};

void Die(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

PartitionAlgorithm ParsePartitioner(const std::string& name) {
  if (name == "ratio-cut") return PartitionAlgorithm::kRatioCut;
  if (name == "fm") return PartitionAlgorithm::kFm;
  if (name == "kl") return PartitionAlgorithm::kKl;
  if (name == "random") return PartitionAlgorithm::kRandom;
  std::fprintf(stderr, "unknown partitioner '%s'\n", name.c_str());
  std::exit(2);
}

Network LoadNet(const std::string& path) {
  auto net = LoadNetwork(path);
  if (!net.ok()) {
    std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                 net.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*net);
}

AccessMethodOptions OptionsFrom(const Args& args) {
  AccessMethodOptions options;
  options.page_size = static_cast<size_t>(args.GetInt("page-size", 1024));
  options.buffer_pool_pages =
      static_cast<size_t>(args.GetInt("buffer-pages", 8));
  options.partitioner =
      ParsePartitioner(args.GetString("partitioner", "ratio-cut"));
  options.use_access_weights = args.GetFlag("weighted");
  options.maintain_bptree_index = true;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  return options;
}

std::unique_ptr<Ccam> OpenFile(const Args& args) {
  auto am = std::make_unique<Ccam>(OptionsFrom(args),
                                   CcamCreateMode::kStatic);
  Die(am->OpenImage(args.Require("image")), "open image");
  return am;
}

int CmdGenerate(const Args& args) {
  RoadMapOptions gen;
  gen.rows = static_cast<int>(args.GetInt("rows", 33));
  gen.cols = static_cast<int>(args.GetInt("cols", 33));
  if (gen.rows < 2 || gen.cols < 2) {
    std::fprintf(stderr, "generate: --rows/--cols must be >= 2\n");
    return 2;
  }
  gen.seed = static_cast<uint64_t>(args.GetInt("seed", 1995));
  gen.nodes_to_remove = static_cast<int>(
      args.GetInt("remove", gen.rows * gen.cols / 100));
  Network net = GenerateRoadMap(gen);
  Die(SaveNetwork(net, args.Require("out")), "save network");
  std::printf("wrote %zu nodes / %zu edges to %s\n", net.NumNodes(),
              net.NumEdges(), args.Require("out").c_str());
  return 0;
}

int CmdCreate(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  CcamCreateMode mode = args.GetString("mode", "static") == "incremental"
                            ? CcamCreateMode::kIncremental
                            : CcamCreateMode::kStatic;
  Ccam am(OptionsFrom(args), mode);
  Die(am.Create(net), "create");
  Die(am.SaveImage(args.Require("image")), "save image");
  std::printf("%s: %zu records on %zu pages, CRR %.4f, WCRR %.4f -> %s\n",
              am.Name().c_str(), am.PageMap().size(), am.NumDataPages(),
              ComputeCrr(net, am.PageMap()), ComputeWcrr(net, am.PageMap()),
              args.Require("image").c_str());
  return 0;
}

int CmdStats(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  auto am = OpenFile(args);
  auto stats = CollectFileStats(am.get(), net);
  Die(stats.status(), "collect stats");
  std::fputs(stats->ToString().c_str(), stdout);
  return 0;
}

int CmdFind(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  (void)net;
  auto am = OpenFile(args);
  NodeId id = static_cast<NodeId>(args.GetInt("id", 0));
  auto rec = am->Find(id);
  Die(rec.status(), "find");
  std::printf("node %u at (%.2f, %.2f), payload %zu bytes\n", rec->id,
              rec->x, rec->y, rec->payload.size());
  std::printf("  successors:");
  for (const AdjEntry& e : rec->succ) {
    std::printf(" %u(%.1f)", e.node, e.cost);
  }
  std::printf("\n  predecessors:");
  for (const AdjEntry& e : rec->pred) {
    std::printf(" %u(%.1f)", e.node, e.cost);
  }
  std::printf("\n");
  return 0;
}

int CmdRoute(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  (void)net;
  auto am = OpenFile(args);
  NodeId from = static_cast<NodeId>(args.GetInt("from", 0));
  NodeId to = static_cast<NodeId>(args.GetInt("to", 0));
  auto res = ShortestPathAStar(am.get(), from, to);
  Die(res.status(), "route");
  if (!res->Found()) {
    std::fprintf(stderr, "no route from %u to %u\n", from, to);
    return 1;
  }
  std::printf("route %u -> %u: cost %.2f, %zu hops, %zu nodes expanded, "
              "%llu data-page accesses\n",
              from, to, res->cost, res->path.size() - 1,
              res->nodes_expanded,
              static_cast<unsigned long long>(res->page_accesses));
  std::printf("  path:");
  for (NodeId id : res->path) std::printf(" %u", id);
  std::printf("\n");
  return 0;
}

int CmdWindow(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  (void)net;
  auto am = OpenFile(args);
  auto engine = SpatialQueryEngine::Build(am.get());
  Die(engine.status(), "build spatial index");
  auto res = (*engine)->WindowQuery(
      args.GetDouble("xmin", 0), args.GetDouble("ymin", 0),
      args.GetDouble("xmax", 0), args.GetDouble("ymax", 0));
  Die(res.status(), "window query");
  std::printf("%zu nodes in window (%llu data-page accesses, %llu index "
              "entries scanned):\n",
              res->records.size(),
              static_cast<unsigned long long>(res->data_page_accesses),
              static_cast<unsigned long long>(res->entries_scanned));
  for (const NodeRecord& rec : res->records) {
    std::printf("  %u (%.1f, %.1f)\n", rec.id, rec.x, rec.y);
  }
  return 0;
}

int CmdReplay(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  (void)net;
  auto am = OpenFile(args);
  auto ops = LoadTrace(args.Require("trace"));
  Die(ops.status(), "load trace");
  ReorgPolicy policy = ReorgPolicy::kFirstOrder;
  std::string p = args.GetString("policy", "first-order");
  if (p == "second-order") policy = ReorgPolicy::kSecondOrder;
  if (p == "higher-order") policy = ReorgPolicy::kHigherOrder;
  auto report = ReplayTrace(am.get(), *ops, policy);
  Die(report.status(), "replay");
  std::fputs(report->ToString().c_str(), stdout);
  return 0;
}

int CmdServe(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  (void)net;
  auto am = OpenFile(args);

  serve::LoadgenOptions load;
  load.tenants = static_cast<uint32_t>(args.GetInt("tenants", 4));
  load.offered_qps = args.GetDouble("qps", 2000.0);
  load.duration_sec = args.GetDouble("duration-ms", 1000.0) * 1e-3;
  load.zipf_theta = args.GetDouble("theta", 0.9);
  load.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  std::vector<serve::ServeRequest> pool =
      serve::BuildRequestPool(am.get(), load);
  if (pool.empty()) {
    std::fprintf(stderr, "serve: empty request pool\n");
    return 1;
  }

  serve::QueryServiceOptions options;
  options.num_workers = static_cast<int>(args.GetInt("workers", 8));
  options.max_queue_depth =
      static_cast<size_t>(args.GetInt("queue-depth", 1024));
  options.tenant_rate = args.GetDouble("rate-limit", 0.0);
  options.region_batching = !args.GetFlag("no-batching");
  serve::QueryService service(am.get(), options);
  serve::LoadReport report =
      serve::RunLoad(&service, am.get(), pool, load);
  service.Shutdown(/*drain=*/true);

  std::printf(
      "served %llu/%llu requests in %.2fs (%s, %d workers, %u tenants)\n"
      "  qps %.0f, p50 %llu us, p95 %llu us, p99 %llu us\n"
      "  reject rate %.3f, batch occupancy %.2f, hit rate %.3f\n"
      "  session reads %llu, disk reads %llu, conserved: %s\n",
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.submitted), report.elapsed_sec,
      options.region_batching ? "batched" : "unbatched",
      service.num_workers(), load.tenants, report.qps,
      static_cast<unsigned long long>(report.p50_us),
      static_cast<unsigned long long>(report.p95_us),
      static_cast<unsigned long long>(report.p99_us), report.reject_rate,
      report.mean_batch_occupancy, report.hit_rate,
      static_cast<unsigned long long>(report.session_reads),
      static_cast<unsigned long long>(report.disk_reads),
      report.conserved ? "yes" : "NO");
  return report.conserved && report.completed > 0 ? 0 : 1;
}

int CmdShard(const Args& args) {
  Network net = LoadNet(args.Require("net"));
  long shards = args.GetInt("shards", 4);
  if (shards < 1 || (shards & (shards - 1)) != 0) {
    std::fprintf(stderr, "shard: --shards must be a power of two >= 1\n");
    return 2;
  }
  ShardedOptions sopts;
  sopts.num_shards = static_cast<uint32_t>(shards);
  sopts.am = OptionsFrom(args);
  ShardedNetworkFile sharded(sopts);
  Die(sharded.Create(net), "create shards");

  Ccam baseline(sopts.am, CcamCreateMode::kStatic);
  Die(baseline.Create(net), "create baseline");

  int count = static_cast<int>(args.GetInt("routes", 64));
  std::vector<Route> routes = GenerateShortestPathRoutes(
      net, count, /*min_length=*/4, sopts.am.seed);
  auto session = sharded.OpenSession();
  auto oracle = baseline.OpenSession();
  size_t mismatches = 0;
  size_t multi = 0;
  uint64_t crossings = 0;
  for (const Route& route : routes) {
    auto got = EvaluateRouteSharded(session.get(), route);
    auto want = EvaluateRoute(oracle.get(), route);
    Die(got.status(), "sharded route");
    Die(want.status(), "baseline route");
    if (got->fanout > 1) ++multi;
    crossings += got->cut_crossings;
    if (got->eval.total_cost != want->total_cost ||
        got->eval.num_edges != want->num_edges) {
      ++mismatches;
    }
  }

  std::printf("%u shards over %zu nodes / %zu edges "
              "(%llu directed cut edges)\n",
              sharded.num_shards(), net.NumNodes(), net.NumEdges(),
              static_cast<unsigned long long>(sharded.NumCutEdges()));
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    std::printf("  shard %u: %zu owned, %zu halo, %zu pages, "
                "%llu session reads\n",
                s, sharded.router().OwnedBy(s).size(),
                sharded.NumHaloRecords(s), sharded.shard(s)->NumDataPages(),
                static_cast<unsigned long long>(
                    session->ShardIoStats(s).reads));
  }
  std::printf("%d routes evaluated (%zu cross-shard), %llu cut crossings, "
              "%zu mismatches vs unsharded\n",
              count, multi, static_cast<unsigned long long>(crossings),
              mismatches);
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "shard: %zu routes disagreed with the unsharded file\n",
                 mismatches);
    return 1;
  }
  return 0;
}

int Usage() {
  std::fputs(
      "usage: ccam_cli <generate|create|stats|find|route|window|replay|"
      "serve|shard> [--flag value ...]\n"
      "see the header comment of tools/ccam_cli.cc for details\n",
      stderr);
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  // Reject unknown subcommands before flag parsing, so a typo'd command
  // reports itself instead of a confusing flag error (and always exits 2).
  static const char* kCommands[] = {"generate", "create", "stats",
                                    "find",     "route",  "window",
                                    "replay",   "serve",  "shard"};
  bool known = false;
  for (const char* c : kCommands) known = known || cmd == c;
  if (!known) {
    std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
    return Usage();
  }
  Args args(argc, argv);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "create") return CmdCreate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "find") return CmdFind(args);
  if (cmd == "route") return CmdRoute(args);
  if (cmd == "window") return CmdWindow(args);
  if (cmd == "replay") return CmdReplay(args);
  if (cmd == "serve") return CmdServe(args);
  return CmdShard(args);
}

}  // namespace
}  // namespace cli
}  // namespace ccam

int main(int argc, char** argv) { return ccam::cli::Main(argc, argv); }
