// scrub — offline verifier for saved CCAM disk images.
//
// Walks every live page of an image and checks, per page: the CRC32C seal
// against the page content, the slotted-page structure, and that every
// live record decodes as a node record. Then reopens the image through the
// file layer and runs the file- and graph-level invariant checks. By
// default the image's WAL tail is replayed first (committed transactions
// are applied, the uncommitted remainder discarded) so the verdict is
// about the *recovered* state; --no-recover scrubs the raw platter as the
// crash left it.
//
// Exit codes: 0 clean, 1 damage found, 2 usage error.
//
// Usage:
//   scrub [--no-recover] [--verbose] IMAGE

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/ccam.h"
#include "src/storage/disk_manager.h"
#include "src/storage/page.h"
#include "src/storage/record.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--no-recover] [--verbose] IMAGE\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool recover = true;
  bool verbose = false;
  std::string image;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-recover") == 0) {
      recover = false;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (image.empty()) {
      image = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (image.empty()) return Usage(argv[0]);

  auto peeked = ccam::DiskManager::PeekPageSize(image);
  if (!peeked.ok()) {
    std::fprintf(stderr, "scrub: %s: %s\n", image.c_str(),
                 peeked.status().ToString().c_str());
    return 1;
  }
  size_t page_size = *peeked;
  ccam::DiskManager disk(page_size);
  ccam::Status st = disk.LoadFromFile(image);
  if (!st.ok()) {
    std::fprintf(stderr, "scrub: %s: %s\n", image.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  if (recover) {
    st = disk.Recover();
    if (!st.ok()) {
      std::fprintf(stderr, "scrub: %s: WAL replay failed: %s\n",
                   image.c_str(), st.ToString().c_str());
      return 1;
    }
  }

  std::vector<ccam::PageId> pages = disk.AllocatedPageIds();
  std::printf("scrub: %s — page-size=%zu, %zu live pages, %s\n",
              image.c_str(), page_size, pages.size(),
              recover ? "after WAL replay" : "raw platter (--no-recover)");

  size_t damaged = 0;
  std::vector<char> buf(page_size);
  for (ccam::PageId id : pages) {
    std::vector<std::string> faults;
    ccam::Status seal = disk.VerifyPage(id);
    if (!seal.ok()) faults.push_back(seal.ToString());
    if (disk.ReadPage(id, buf.data()).ok()) {
      ccam::SlottedPage page(buf.data(), page_size);
      ccam::Status layout = page.Validate();
      if (!layout.ok()) {
        faults.push_back("slotted page: " + layout.ToString());
      } else {
        for (int slot : page.LiveSlots()) {
          auto rec = ccam::NodeRecord::Decode(page.GetRecord(slot));
          if (!rec.ok()) {
            faults.push_back("slot " + std::to_string(slot) +
                             ": record decode: " +
                             rec.status().ToString());
          }
        }
      }
    } else {
      faults.push_back("unreadable");
    }
    if (!faults.empty()) {
      ++damaged;
      for (const std::string& f : faults) {
        std::printf("  page %u: %s\n", id, f.c_str());
      }
    } else if (verbose) {
      std::printf("  page %u: ok\n", id);
    }
  }

  // File-level pass: reopen through the access method and check the
  // stitched graph. With recovery on this exercises the same durable-open
  // path a restart would take.
  ccam::AccessMethodOptions opt;
  opt.page_size = page_size;
  opt.durability = recover;
  ccam::Ccam file(opt);
  st = file.OpenImage(image);
  if (st.ok()) st = file.CheckFileInvariants();
  if (st.ok()) st = file.CheckGraphInvariants();

  std::printf("scrub: %zu/%zu page(s) damaged; file invariants: %s\n",
              damaged, pages.size(), st.ok() ? "OK" : st.ToString().c_str());
  if (damaged > 0 || !st.ok()) {
    std::fprintf(stderr, "scrub: FAIL — image is damaged\n");
    return 1;
  }
  std::printf("scrub: OK — every page seal, record and invariant holds\n");
  return 0;
}
