// crashsim — crash-consistency sweep driver.
//
// Runs the deterministic crash harness (src/core/crash_harness.h): a seeded
// CCAM maintenance workload is killed at scheduled kill points, the
// surviving platter state is reopened and verified. Prints a per-point
// outcome table, optionally writes a machine-readable JSON report, and
// exits nonzero on any classification failure:
//   - default (detect-only): a kill point must recover or be detected with
//     a clean typed Status; a scheduled kill that never fires also fails.
//   - --strict: runs with write-ahead logging on; every kill point must
//     recover to exactly the acknowledged operations (plus at most the
//     in-flight one, atomically), with deterministic replay.
//
// With --snapshot the system under test is the versioned snapshot store
// (SnapshotManager): the seeded mutation stream interleaves synchronous
// reorganizations, and the kill is scheduled on one of the "snapshot.*"
// protocol failpoints (log.append, log.flush, build, publish, retire).
// Snapshot mode is always strict — recovery must land on exactly the old
// or exactly the new version, never a blend.
//
// Usage:
//   crashsim [--seed=N] [--page-size=N] [--ops=N] [--points=N]
//            [--torn-bytes=N] [--policy=first|second|higher]
//            [--failpoint=disk.write|wal.append|wal.flush]
//            [--strict] [--json=PATH] [--image=PATH] [--verbose]
//   crashsim --snapshot [--seed=N] [--page-size=N] [--ops=N] [--points=N]
//            [--torn-bytes=N] [--reorg-every=N] [--dir=PATH]
//            [--failpoint=snapshot.log.append|snapshot.log.flush|
//                         snapshot.build|snapshot.publish|snapshot.retire]
//            [--json=PATH] [--verbose]
//   crashsim --list-failpoints
//
// --list-failpoints prints the full failpoint catalog (name, site, what the
// injected fault models) plus the fault-schedule syntax, so chaos schedules
// can be authored without reading source.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/fault_injector.h"
#include "src/core/crash_harness.h"

namespace {

int ListFailpoints() {
  std::printf("failpoint catalog (name — site — injected fault):\n");
  for (const ccam::FailpointInfo& fp : ccam::FaultInjector::Catalog()) {
    std::printf("  %-22s %s\n  %-22s   %s\n", fp.name, fp.site, "", fp.notes);
  }
  std::printf(
      "\nschedule syntax (FaultInjector::Configure; comma-separated):\n"
      "  <point>=<action>[@<trigger>]\n"
      "  actions:  error[:<code>]   (code: io, corruption, notfound;"
      " default io)\n"
      "            short:<bytes>  |  torn:<bytes>  |  nospace  |"
      "  crash:<bytes>\n"
      "  triggers: @<n> (once, on hit n)   @<n>+ (from hit n on)\n"
      "            @every<n>               @p<prob>        (default: @1)\n"
      "  example:  disk.write=crash:96@17,disk.read=error@p0.01\n");
  return 0;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed=N] [--page-size=N] [--ops=N] [--points=N]\n"
      "          [--torn-bytes=N] [--policy=first|second|higher]\n"
      "          [--failpoint=disk.write|wal.append|wal.flush]\n"
      "          [--strict] [--json=PATH] [--image=PATH] [--verbose]\n"
      "       %s --snapshot [--seed=N] [--page-size=N] [--ops=N]\n"
      "          [--points=N] [--torn-bytes=N] [--reorg-every=N]\n"
      "          [--dir=PATH] [--failpoint=snapshot.*] [--json=PATH]\n"
      "          [--verbose]\n"
      "       %s --list-failpoints   (print the failpoint catalog and the\n"
      "          fault-schedule syntax, then exit)\n",
      argv0, argv0, argv0);
  return 2;
}

bool IsSnapshotFailpoint(const std::string& v) {
  return v == "snapshot.log.append" || v == "snapshot.log.flush" ||
         v == "snapshot.build" || v == "snapshot.publish" ||
         v == "snapshot.retire";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Publishes `body` at `path` via a temp file and an atomic rename: the
/// report either appears whole and parseable or not at all — an
/// interrupted or failed sweep can never leave a partial JSON object
/// where a gating script would try to parse it.
bool AtomicWriteFile(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << body;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Valid error-report JSON for a sweep that died before producing a
/// report (--json consumers get a parseable document either way).
bool WriteJsonError(const std::string& path, const std::string& message) {
  std::ostringstream out;
  out << "{\n  \"error\": \"" << JsonEscape(message) << "\"\n}\n";
  return AtomicWriteFile(path, out.str());
}

bool WriteJsonReport(const std::string& path,
                     const ccam::CrashSimOptions& opt,
                     const ccam::CrashSimReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"page_size\": " << opt.page_size << ",\n"
      << "  \"policy\": \"" << ccam::ReorgPolicyName(opt.policy) << "\",\n"
      << "  \"torn_bytes\": " << opt.torn_bytes << ",\n"
      << "  \"durability\": " << (opt.durability ? "true" : "false") << ",\n"
      << "  \"failpoint\": \"" << JsonEscape(opt.crash_failpoint) << "\",\n"
      << "  \"total_kill_points\": " << report.total_writes << ",\n"
      << "  \"swept\": " << report.points.size() << ",\n"
      << "  \"counts\": {\n"
      << "    \"no_crash\": " << report.no_crash << ",\n"
      << "    \"recovered\": " << report.recovered << ",\n"
      << "    \"corruption_detected\": " << report.corruption_detected
      << ",\n"
      << "    \"durable\": " << report.durable << ",\n"
      << "    \"lost_ack\": " << report.lost_ack << ",\n"
      << "    \"recovery_failed\": " << report.recovery_failed << "\n"
      << "  },\n"
      << "  \"failures\": " << report.failures() << ",\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < report.points.size(); ++i) {
    const ccam::CrashPointReport& p = report.points[i];
    out << "    {\"point\": " << p.crash_point << ", \"outcome\": \""
        << ccam::CrashOutcomeName(p.result.outcome)
        << "\", \"writes_before_crash\": " << p.result.writes_before_crash
        << ", \"recovered_nodes\": " << p.result.recovered_nodes
        << ", \"recovered_image_crc\": " << p.result.recovered_image_crc
        << ", \"detail\": \"" << JsonEscape(p.result.detail) << "\"}"
        << (i + 1 < report.points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return AtomicWriteFile(path, out.str());
}

bool WriteSnapshotJsonReport(const std::string& path,
                             const ccam::SnapshotCrashOptions& opt,
                             const ccam::CrashSimReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"mode\": \"snapshot\",\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"page_size\": " << opt.page_size << ",\n"
      << "  \"ops\": " << opt.ops << ",\n"
      << "  \"reorg_every\": " << opt.reorg_every << ",\n"
      << "  \"torn_bytes\": " << opt.torn_bytes << ",\n"
      << "  \"failpoint\": \"" << JsonEscape(opt.crash_failpoint) << "\",\n"
      << "  \"total_kill_points\": " << report.total_writes << ",\n"
      << "  \"swept\": " << report.points.size() << ",\n"
      << "  \"counts\": {\n"
      << "    \"no_crash\": " << report.no_crash << ",\n"
      << "    \"durable\": " << report.durable << ",\n"
      << "    \"lost_ack\": " << report.lost_ack << ",\n"
      << "    \"recovery_failed\": " << report.recovery_failed << "\n"
      << "  },\n"
      << "  \"failures\": " << report.failures() << ",\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < report.points.size(); ++i) {
    const ccam::CrashPointReport& p = report.points[i];
    out << "    {\"point\": " << p.crash_point << ", \"outcome\": \""
        << ccam::CrashOutcomeName(p.result.outcome)
        << "\", \"recovered_nodes\": " << p.result.recovered_nodes
        << ", \"recovered_image_crc\": " << p.result.recovered_image_crc
        << ", \"detail\": \"" << JsonEscape(p.result.detail) << "\"}"
        << (i + 1 < report.points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return AtomicWriteFile(path, out.str());
}

int RunSnapshotMode(const ccam::SnapshotCrashOptions& opt, uint64_t points,
                    bool verbose, const std::string& json_path) {
  auto report = ccam::RunSnapshotCrashSim(opt, points);
  if (!report.ok()) {
    std::fprintf(stderr, "crashsim: %s\n",
                 report.status().ToString().c_str());
    if (!json_path.empty()) {
      WriteJsonError(json_path, report.status().ToString());
    }
    return 1;
  }
  std::printf(
      "crashsim: snapshot mode seed=%llu page-size=%zu ops=%d "
      "reorg-every=%d torn-bytes=%d failpoint=%s — %llu kill points, "
      "%zu swept\n",
      static_cast<unsigned long long>(opt.seed), opt.page_size, opt.ops,
      opt.reorg_every, opt.torn_bytes, opt.crash_failpoint.c_str(),
      static_cast<unsigned long long>(report->total_writes),
      report->points.size());
  for (const ccam::CrashPointReport& p : report->points) {
    bool failed = p.result.outcome == ccam::CrashOutcome::kNoCrash ||
                  p.result.outcome == ccam::CrashOutcome::kLostAck ||
                  p.result.outcome == ccam::CrashOutcome::kRecoveryFailed;
    if (verbose || failed) {
      std::printf("  point %5llu: %-19s %s\n",
                  static_cast<unsigned long long>(p.crash_point),
                  ccam::CrashOutcomeName(p.result.outcome),
                  p.result.detail.c_str());
    }
  }
  std::printf("crashsim: %zu durable, %zu lost-ack, %zu recovery-failed, "
              "%zu no-crash\n",
              report->durable, report->lost_ack, report->recovery_failed,
              report->no_crash);
  if (!json_path.empty() &&
      !WriteSnapshotJsonReport(json_path, opt, *report)) {
    std::fprintf(stderr, "crashsim: cannot write JSON report to %s\n",
                 json_path.c_str());
    return 1;
  }
  if (report->failures() > 0) {
    std::fprintf(stderr,
                 "crashsim: FAIL — %zu kill point(s) recovered to a state "
                 "that is neither the old nor the new version\n",
                 report->failures());
    return 1;
  }
  std::printf("crashsim: OK — every kill point recovered to exactly the "
              "old or exactly the new version\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ccam::CrashSimOptions opt;
  opt.image_path = "/tmp/ccam_crashsim.img";
  ccam::SnapshotCrashOptions snap_opt;
  snap_opt.dir = "/tmp/ccam_crashsim_store";
  bool snapshot_mode = false;
  bool failpoint_set = false;
  uint64_t points = 64;
  bool verbose = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
      snap_opt.seed = opt.seed;
    } else if (ParseFlag(argv[i], "page-size", &v)) {
      opt.page_size = std::strtoull(v.c_str(), nullptr, 10);
      snap_opt.page_size = opt.page_size;
    } else if (ParseFlag(argv[i], "ops", &v)) {
      opt.ops = std::atoi(v.c_str());
      snap_opt.ops = opt.ops;
    } else if (ParseFlag(argv[i], "points", &v)) {
      points = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "torn-bytes", &v)) {
      opt.torn_bytes = std::atoi(v.c_str());
      snap_opt.torn_bytes = opt.torn_bytes;
    } else if (ParseFlag(argv[i], "reorg-every", &v)) {
      snap_opt.reorg_every = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "image", &v)) {
      opt.image_path = v;
    } else if (ParseFlag(argv[i], "dir", &v)) {
      snap_opt.dir = v;
    } else if (ParseFlag(argv[i], "json", &v)) {
      json_path = v;
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      snapshot_mode = true;
    } else if (std::strcmp(argv[i], "--list-failpoints") == 0) {
      return ListFailpoints();
    } else if (ParseFlag(argv[i], "failpoint", &v)) {
      if (v != "disk.write" && v != "wal.append" && v != "wal.flush" &&
          !IsSnapshotFailpoint(v)) {
        return Usage(argv[0]);
      }
      opt.crash_failpoint = v;
      snap_opt.crash_failpoint = v;
      failpoint_set = true;
    } else if (ParseFlag(argv[i], "policy", &v)) {
      if (v == "first") {
        opt.policy = ccam::ReorgPolicy::kFirstOrder;
      } else if (v == "second") {
        opt.policy = ccam::ReorgPolicy::kSecondOrder;
      } else if (v == "higher") {
        opt.policy = ccam::ReorgPolicy::kHigherOrder;
      } else {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      opt.durability = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (snapshot_mode) {
    if (failpoint_set && !IsSnapshotFailpoint(snap_opt.crash_failpoint)) {
      std::fprintf(stderr,
                   "crashsim: --snapshot requires a snapshot.* failpoint "
                   "(got %s)\n",
                   snap_opt.crash_failpoint.c_str());
      return 2;
    }
    return RunSnapshotMode(snap_opt, points, verbose, json_path);
  }
  if (IsSnapshotFailpoint(opt.crash_failpoint)) {
    std::fprintf(stderr,
                 "crashsim: --failpoint=%s requires --snapshot\n",
                 opt.crash_failpoint.c_str());
    return 2;
  }
  if (opt.crash_failpoint != "disk.write" && !opt.durability) {
    std::fprintf(stderr,
                 "crashsim: --failpoint=%s requires --strict (the WAL only "
                 "exists in durable mode)\n",
                 opt.crash_failpoint.c_str());
    return 2;
  }

  auto report = ccam::RunCrashSim(opt, points);
  if (!report.ok()) {
    std::fprintf(stderr, "crashsim: %s\n",
                 report.status().ToString().c_str());
    if (!json_path.empty()) {
      WriteJsonError(json_path, report.status().ToString());
    }
    return 1;
  }
  std::printf(
      "crashsim: seed=%llu page-size=%zu policy=%s torn-bytes=%d "
      "failpoint=%s mode=%s — %llu kill points, %zu swept\n",
      static_cast<unsigned long long>(opt.seed), opt.page_size,
      ccam::ReorgPolicyName(opt.policy), opt.torn_bytes,
      opt.crash_failpoint.c_str(), opt.durability ? "strict" : "detect-only",
      static_cast<unsigned long long>(report->total_writes),
      report->points.size());
  for (const ccam::CrashPointReport& p : report->points) {
    bool failed = p.result.outcome == ccam::CrashOutcome::kNoCrash ||
                  p.result.outcome == ccam::CrashOutcome::kLostAck ||
                  p.result.outcome == ccam::CrashOutcome::kRecoveryFailed;
    if (verbose || failed) {
      std::printf("  point %5llu: %-19s %s\n",
                  static_cast<unsigned long long>(p.crash_point),
                  ccam::CrashOutcomeName(p.result.outcome),
                  p.result.detail.c_str());
    }
  }
  std::printf(
      "crashsim: %zu durable, %zu recovered, %zu corruption-detected, "
      "%zu lost-ack, %zu recovery-failed, %zu no-crash\n",
      report->durable, report->recovered, report->corruption_detected,
      report->lost_ack, report->recovery_failed, report->no_crash);
  if (!json_path.empty() && !WriteJsonReport(json_path, opt, *report)) {
    std::fprintf(stderr, "crashsim: cannot write JSON report to %s\n",
                 json_path.c_str());
    return 1;
  }
  if (report->failures() > 0) {
    std::fprintf(stderr, "crashsim: FAIL — %zu kill point(s) violated the "
                 "%s criterion\n",
                 report->failures(),
                 opt.durability ? "strict durability" : "detection");
    return 1;
  }
  std::printf(opt.durability
                  ? "crashsim: OK — every kill point recovered exactly the "
                    "acknowledged operations\n"
                  : "crashsim: OK — every crash point recovered or was "
                    "detected with a typed status\n");
  return 0;
}
