// crashsim — crash-consistency sweep driver.
//
// Runs the deterministic crash harness (src/core/crash_harness.h): a seeded
// CCAM maintenance workload is killed at scheduled page-write boundaries,
// the surviving platter state is reopened and verified. Prints a per-point
// outcome table and exits nonzero if any crash point neither recovers nor
// is detected with a clean typed Status.
//
// Usage:
//   crashsim [--seed=N] [--page-size=N] [--ops=N] [--points=N]
//            [--torn-bytes=N] [--policy=first|second|higher]
//            [--image=PATH] [--verbose]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/crash_harness.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--page-size=N] [--ops=N] [--points=N]\n"
               "          [--torn-bytes=N] [--policy=first|second|higher]\n"
               "          [--image=PATH] [--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ccam::CrashSimOptions opt;
  opt.image_path = "/tmp/ccam_crashsim.img";
  uint64_t points = 64;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "page-size", &v)) {
      opt.page_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "ops", &v)) {
      opt.ops = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "points", &v)) {
      points = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "torn-bytes", &v)) {
      opt.torn_bytes = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "image", &v)) {
      opt.image_path = v;
    } else if (ParseFlag(argv[i], "policy", &v)) {
      if (v == "first") {
        opt.policy = ccam::ReorgPolicy::kFirstOrder;
      } else if (v == "second") {
        opt.policy = ccam::ReorgPolicy::kSecondOrder;
      } else if (v == "higher") {
        opt.policy = ccam::ReorgPolicy::kHigherOrder;
      } else {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  auto report = ccam::RunCrashSim(opt, points);
  if (!report.ok()) {
    std::fprintf(stderr, "crashsim: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "crashsim: seed=%llu page-size=%zu policy=%s torn-bytes=%d — "
      "%llu write boundaries, %zu crash points\n",
      static_cast<unsigned long long>(opt.seed), opt.page_size,
      ccam::ReorgPolicyName(opt.policy), opt.torn_bytes,
      static_cast<unsigned long long>(report->total_writes),
      report->points.size());
  bool bad = false;
  for (const ccam::CrashPointReport& p : report->points) {
    bool unexpected = p.result.outcome == ccam::CrashOutcome::kNoCrash;
    bad = bad || unexpected;
    if (verbose || unexpected) {
      std::printf("  point %5llu: %-19s %s\n",
                  static_cast<unsigned long long>(p.crash_point),
                  ccam::CrashOutcomeName(p.result.outcome),
                  p.result.detail.c_str());
    }
  }
  std::printf(
      "crashsim: %zu recovered, %zu corruption-detected, %zu no-crash\n",
      report->recovered, report->corruption_detected, report->no_crash);
  if (bad) {
    std::fprintf(stderr,
                 "crashsim: FAIL — scheduled crash point(s) never fired\n");
    return 1;
  }
  std::printf("crashsim: OK — every crash point recovered or was detected "
              "with a typed status\n");
  return 0;
}
