// stats: runs a representative workload against a durable CCAM file with
// the metrics registry attached and dumps every collected series — the
// quickest way to see the observability layer end to end.
//
// The workload is the full stack: a static CCAM-S create with durability
// on (WAL transactions, group commits), an insert/delete churn phase, and
// one of each query operator (route evaluation, A* search, route-unit
// aggregation, reachability traversal, spatial window). Afterwards the
// tool verifies that every metric family the stack is instrumented with
// (buffer_pool.*, disk.*, wal.*, query.*) collected at least one nonzero
// sample, and exits nonzero otherwise — so it doubles as a smoke test
// that the instrumentation stays wired through every layer.
//
// Usage: stats [--json]
//   default : human-readable table (MetricsRegistry::DumpText)
//   --json  : full catalog as JSON, including histogram buckets

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/aggregate.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/query/spatial.h"
#include "src/query/traversal.h"

namespace ccam {
namespace {

int Fail(const char* what, const Status& s) {
  std::fprintf(stderr, "stats: %s failed: %s\n", what, s.ToString().c_str());
  return 1;
}

int Run(bool json) {
  // The paper's evaluation network (33x33 jittered grid minus 10 nodes).
  Network net = GenerateRoadMap(RoadMapOptions{});

  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 16;
  options.durability = true;  // exercise the wal.* series
  Ccam am(options, CcamCreateMode::kStatic);

  MetricsRegistry metrics;
  am.SetMetrics(&metrics);

  Status s = am.Create(net);
  if (!s.ok()) return Fail("create", s);

  // Update churn: delete and re-insert a sample of nodes. Each operation
  // is one WAL transaction, so this feeds wal.append / wal.flush_us and
  // the pool's writeback counters.
  std::vector<NodeId> ids = net.NodeIds();
  for (size_t i = 0; i < ids.size(); i += 97) {
    auto rec = am.Find(ids[i]);
    if (!rec.ok()) return Fail("find", rec.status());
    s = am.DeleteNode(ids[i], ReorgPolicy::kFirstOrder);
    if (!s.ok()) return Fail("delete", s);
    s = am.InsertNode(*rec, ReorgPolicy::kSecondOrder);
    if (!s.ok()) return Fail("insert", s);
  }

  // One of each query operator, all through the metrics-attached file so
  // the query.* spans record.
  std::vector<Route> routes = GenerateRandomWalkRoutes(net, 32, 24, 7);
  for (const Route& r : routes) {
    auto res = EvaluateRoute(&am, r);
    if (!res.ok()) return Fail("route eval", res.status());
  }
  {
    const Route& r = routes.front();
    auto res = ShortestPathAStar(&am, r.nodes.front(), r.nodes.back());
    if (!res.ok()) return Fail("a* search", res.status());
  }
  {
    RouteUnit unit;
    unit.name = "route-0";
    const Route& r = routes.front();
    for (size_t i = 0; i + 1 < r.nodes.size(); ++i) {
      unit.edges.emplace_back(r.nodes[i], r.nodes[i + 1]);
    }
    auto res = AggregateRouteUnit(&am, unit);
    if (!res.ok()) return Fail("aggregate", res.status());
  }
  {
    auto res = ReachableFrom(&am, ids.front(), /*max_depth=*/4);
    if (!res.ok()) return Fail("traversal", res.status());
  }
  {
    auto engine = SpatialQueryEngine::Build(&am);
    if (!engine.ok()) return Fail("spatial build", engine.status());
    auto res = (*engine)->WindowQuery(0, 0, 800, 800);
    if (!res.ok()) return Fail("window query", res.status());
  }

  if (json) {
    std::printf("%s\n", metrics.ExportJson().c_str());
  } else {
    metrics.DumpText(stdout);
  }

  // Acceptance check: every instrumented family produced data.
  const char* families[] = {"buffer_pool.", "disk.", "wal.", "query."};
  std::vector<MetricsRegistry::Sample> samples = metrics.Samples();
  int missing = 0;
  for (const char* family : families) {
    bool nonzero = false;
    for (const auto& sample : samples) {
      if (sample.name.rfind(family, 0) != 0) continue;
      if (sample.count > 0 || sample.gauge != 0) {
        nonzero = true;
        break;
      }
    }
    if (!nonzero) {
      std::fprintf(stderr, "stats: no nonzero %s* series collected\n",
                   family);
      missing = 1;
    }
  }
  return missing;
}

}  // namespace
}  // namespace ccam

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      return 2;
    }
  }
  return ccam::Run(json);
}
