#!/usr/bin/env bash
# Runs the request-lifecycle chaos battery: the serve-layer chaos hammer
# (8 workers under deadline pressure with seeded disk.read corruption /
# short-read schedules — every ticket must come back with a typed status,
# quarantined pages must never be served, and the IoStats books must
# balance), plus the quarantine/read-retry unit suite and the delta-log
# recovery fuzz under a concurrent reader session.
#
# All three suites are tier-1 (the default `ctest` run includes them);
# this script is the focused entry point for iterating on them and the
# `chaos` CI stage.
# Usage: scripts/check_chaos.sh [build-dir]   (default: build)
set -euo pipefail

BUILD="${1:-build}"
cd "$(dirname "$0")/.."

cmake -B "$BUILD" -S .
cmake --build "$BUILD" --target \
  chaos_serve_test quarantine_test delta_log_recovery_test -j "$(nproc)"

ctest --test-dir "$BUILD" \
  -R 'chaos_serve_test|quarantine_test|delta_log_recovery_test' \
  --output-on-failure

echo "chaos: battery passed — every outcome typed, quarantine contained."
