#!/usr/bin/env bash
# Bench-regression gate: diffs two bench JSON artifacts and fails when the
# current run regressed against the baseline.
#
# Understands both artifact schemas the benches emit:
#   * bench_util.h writer  — {"bench", "schema_version", "records": [...]};
#     records are joined on their string/bool fields (table, method, ...),
#   * google-benchmark     — {"context", "benchmarks": [...]}; entries are
#     joined on "name".
#
# Numeric fields whose names look like wall-clock measurements (ms, us,
# qps, time, rate, speedup) are compared within a relative tolerance
# (default 25%, only regressions in either direction are reported).
# Every other numeric field — page accesses, CRR, page counts — is the
# deterministic output of a seeded experiment and must match EXACTLY;
# any drift there is a correctness change, not noise.
#
# Artifacts produced by a DEBUG build (google-benchmark stamps
# "library_build_type": "debug" into its context) skip the wall-clock
# comparisons entirely, with a loud warning: debug timings measure
# assertion density, not performance. Deterministic fields still gate.
#
# Usage:
#   scripts/check_perf.sh baseline.json current.json [tolerance-pct]
#   scripts/check_perf.sh --smoke [build-dir]
#       builds the fastest bench plus the hierarchy-speedup bench (at its
#       smallest scale point) and the shard-scaling bench (at a reduced
#       route count), runs each twice, and diffs the artifact pairs — a
#       self-test that the gate and the writers agree, and that the CH
#       overlay's page accesses and the sharded file's read/cut/halo
#       counts are run-to-run deterministic.
set -uo pipefail
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--smoke" ]]; then
  cd "$ROOT"
  BUILD="${2:-build}"
  cmake -B "$BUILD" -S . >/dev/null &&
    cmake --build "$BUILD" --target fig5_crr hierarchy_speedup \
      shard_scaling -j "$(nproc)" >/dev/null ||
    { echo "check_perf: smoke build failed"; exit 1; }
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  mkdir -p "$TMP/a" "$TMP/b"
  CCAM_BENCH_JSON_DIR="$TMP/a" "$BUILD/bench/fig5_crr" >/dev/null || exit 1
  CCAM_BENCH_JSON_DIR="$TMP/b" "$BUILD/bench/fig5_crr" >/dev/null || exit 1
  CCAM_BENCH_JSON_DIR="$TMP/a" CCAM_HIER_SIDES=32 \
    "$BUILD/bench/hierarchy_speedup" >/dev/null || exit 1
  CCAM_BENCH_JSON_DIR="$TMP/b" CCAM_HIER_SIDES=32 \
    "$BUILD/bench/hierarchy_speedup" >/dev/null || exit 1
  # Sub-millisecond CH queries make the wall-clock columns jittery at the
  # smoke scale; widen only the noisy-field tolerance — access counts are
  # still required to match exactly.
  "$0" "$TMP/a/BENCH_hierarchy_speedup.json" \
       "$TMP/b/BENCH_hierarchy_speedup.json" 75 || exit 1
  # Shard scaling at a reduced route count; the deterministic columns
  # (reads, cut edges, halo, crossings, mismatches) must self-diff
  # exactly, and the tiny eval times get the same widened tolerance.
  CCAM_BENCH_JSON_DIR="$TMP/a" CCAM_SHARD_ROUTES=40 \
    "$BUILD/bench/shard_scaling" >/dev/null || exit 1
  CCAM_BENCH_JSON_DIR="$TMP/b" CCAM_SHARD_ROUTES=40 \
    "$BUILD/bench/shard_scaling" >/dev/null || exit 1
  "$0" "$TMP/a/BENCH_shard_scaling.json" \
       "$TMP/b/BENCH_shard_scaling.json" 75 || exit 1
  set -- "$TMP/a/BENCH_fig5_crr.json" "$TMP/b/BENCH_fig5_crr.json"
fi

if [[ $# -lt 2 ]]; then
  echo "usage: $0 baseline.json current.json [tolerance-pct]" >&2
  echo "       $0 --smoke [build-dir]" >&2
  exit 2
fi

# A gate with no history is not a failure: the first run of a new bench
# (or a fresh checkout with no archived artifacts) has nothing to diff
# against. Warn loudly and pass, so CI pipelines can wire the gate in
# before the baseline exists.
if [[ ! -f "$1" ]]; then
  echo "check_perf: WARNING: baseline '$1' does not exist — nothing to" \
       "compare against yet. Passing; archive the current artifact to" \
       "start the history."
  exit 0
fi

BASELINE="$1" CURRENT="$2" TOL="${3:-25}" python3 - <<'EOF'
import json, os, sys

baseline_path = os.environ["BASELINE"]
current_path = os.environ["CURRENT"]
tol = float(os.environ["TOL"]) / 100.0

# Wall-clock-ish field names: noisy, compared within tolerance. Everything
# else numeric is deterministic and must match exactly.
NOISY = ("ms", "us", "time", "qps", "sec", "rate", "speedup", "occupancy",
         "per_query")

def noisy(field):
    f = field.lower()
    return any(tok in f for tok in NOISY)

# Set by load() when an artifact came from a debug build (google-benchmark
# stamps "library_build_type" into its context). Debug wall-clock numbers
# measure assertion density, not performance: comparing them is pure
# noise, so the noisy fields are skipped entirely — loudly.
debug_build = False

def load(path):
    """Returns {join_key: {field: number}} for either artifact schema."""
    global debug_build
    with open(path) as f:
        doc = json.load(f)
    ctx = doc.get("context")
    if isinstance(ctx, dict) and ctx.get("library_build_type") == "debug":
        print(f"check_perf: WARNING: {os.path.basename(path)} was produced "
              "by a DEBUG build; wall-clock fields will NOT be compared "
              "(deterministic fields still must match exactly). Re-run the "
              "bench from a Release build for a real perf gate.")
        debug_build = True
    out = {}
    if "records" in doc:  # bench_util.h schema
        # Records are joined on their string/bool fields; many records can
        # share those (e.g. one per sweep point of the same table), so a
        # same-key occurrence index disambiguates — record emission order
        # is deterministic, making the index stable across runs.
        seen = {}
        for rec in doc["records"]:
            keys, nums = [], {}
            for field, value in rec.items():
                if isinstance(value, bool) or isinstance(value, str):
                    keys.append(f"{field}={value}")
                elif isinstance(value, (int, float)):
                    nums[field] = float(value)
            base = "/".join(keys) or "record"
            n = seen[base] = seen.get(base, 0) + 1
            out[base if n == 1 else f"{base}#{n}"] = nums
    elif "benchmarks" in doc:  # google-benchmark schema
        # "iterations" is auto-tuned from wall-clock by the framework, so
        # it is neither deterministic nor a measurement — skip it.
        skip = {"iterations", "repetition_index", "family_index",
                "per_family_instance_index"}
        for rec in doc["benchmarks"]:
            if rec.get("run_type") == "aggregate":
                continue
            nums = {f: float(v) for f, v in rec.items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                    and f not in skip}
            out[rec["name"]] = nums
    else:
        sys.exit(f"check_perf: {path}: neither 'records' nor 'benchmarks'")
    return out

base, cur = load(baseline_path), load(current_path)

# An empty baseline is a degenerate history, not a regression: the bench
# emitted a valid artifact with zero records (e.g. every sweep point was
# skipped at this scale). Warn and pass rather than flagging every current
# record as "new".
if not base:
    print(f"check_perf: WARNING: baseline {os.path.basename(baseline_path)} "
          "has no records — empty bench history, nothing to gate. Passing.")
    sys.exit(0)

failures, compared = [], 0

for key in sorted(base):
    if key not in cur:
        failures.append(f"missing record: {key}")
        continue
    for field, old in sorted(base[key].items()):
        if field not in cur[key]:
            failures.append(f"{key}: field '{field}' disappeared")
            continue
        new = cur[key][field]
        if noisy(field) and debug_build:
            continue
        compared += 1
        if noisy(field):
            limit = tol * max(abs(old), 1e-9)
            if abs(new - old) > limit:
                failures.append(
                    f"{key}: {field} {old:g} -> {new:g} "
                    f"({(new - old) / max(abs(old), 1e-9) * 100:+.1f}%, "
                    f"tolerance {tol * 100:.0f}%)")
        elif new != old:
            failures.append(
                f"{key}: {field} {old:g} -> {new:g} (deterministic field "
                "must match exactly)")
for key in sorted(cur):
    if key not in base:
        failures.append(f"new record (no baseline): {key}")

name = os.path.basename(current_path)
if failures:
    print(f"check_perf: {name}: {len(failures)} regression(s) "
          f"({compared} fields compared):")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print(f"check_perf: {name}: OK — {len(base)} records, "
      f"{compared} fields within tolerance {tol * 100:.0f}%")
EOF
