#!/usr/bin/env bash
# Runs the fault-injection and crash-consistency acceptance suite: the
# `faults`-labeled ctest suites (skipped by the default `ctest` run via
# the `faults` configuration), including the heavy sweeps (>= 200 crash
# points, 10k-op differential-oracle workloads at 1 KiB and 4 KiB pages),
# plus a crashsim seed sweep across reorganization policies.
# Usage: scripts/check_faults.sh [build-dir]   (default: build)
set -euo pipefail

BUILD="${1:-build}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" --target \
  fault_injector_test crash_consistency_test dynamic_oracle_test crashsim

# Fast suites + acceptance sweeps (the `faults` ctest configuration).
ctest --test-dir "$BUILD" -C faults -L faults --output-on-failure

# crashsim seed sweep: every (seed, policy) pair must report every crash
# point as recovered or corruption-detected — crashsim exits nonzero
# otherwise.
for seed in 7 11 1995; do
  for policy in first second; do
    "$BUILD"/tools/crashsim --seed="$seed" --policy="$policy" --points=40 \
      --image="${TMPDIR:-/tmp}/ccam_crashsim_${seed}_${policy}.img"
  done
done

echo "faults: every crash point recovered or was detected; oracle replay"
echo "faults: saw zero divergences. All fault suites passed."
