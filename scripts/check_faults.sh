#!/usr/bin/env bash
# Runs the fault-injection and crash-consistency acceptance suite: the
# `faults`-labeled ctest suites (skipped by the default `ctest` run via
# the `faults` configuration), including the heavy sweeps (>= 200 crash
# points, 10k-op differential-oracle workloads at 1 KiB and 4 KiB pages),
# plus a crashsim seed sweep across reorganization policies.
# Usage: scripts/check_faults.sh [build-dir]   (default: build)
set -euo pipefail

BUILD="${1:-build}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" --target \
  fault_injector_test crash_consistency_test dynamic_oracle_test crashsim

# Fast suites + acceptance sweeps (the `faults` ctest configuration).
ctest --test-dir "$BUILD" -C faults -L faults --output-on-failure

# crashsim seed sweep (detect-only): every (seed, policy) pair must report
# every crash point as recovered or corruption-detected — crashsim exits
# nonzero otherwise.
for seed in 7 11 1995; do
  for policy in first second; do
    "$BUILD"/tools/crashsim --seed="$seed" --policy="$policy" --points=40 \
      --image="${TMPDIR:-/tmp}/ccam_crashsim_${seed}_${policy}.img"
  done
done

# Strict durable sweep: with the WAL on, every seeded kill point — across
# the page-write, WAL-append and WAL-flush spaces — must recover exactly
# the acknowledged operations with deterministic replay. Gated twice: on
# crashsim's exit code AND on the machine-readable report (failures must
# be 0 and the durable count must equal the points swept).
JSON_DIR="${TMPDIR:-/tmp}"
for fp in disk.write wal.append wal.flush; do
  json="$JSON_DIR/ccam_crashsim_strict_${fp}.json"
  "$BUILD"/tools/crashsim --strict --failpoint="$fp" --seed=1995 --points=70 \
    --image="$JSON_DIR/ccam_crashsim_strict_${fp}.img" --json="$json"
  grep -q '"failures": 0,' "$json" || {
    echo "check_faults: $json reports failures" >&2; exit 1; }
  grep -q '"lost_ack": 0,' "$json" || {
    echo "check_faults: $json reports lost acknowledged ops" >&2; exit 1; }
done

echo "faults: every crash point recovered or was detected; oracle replay"
echo "faults: saw zero divergences; strict durable sweeps lost zero acked"
echo "faults: operations. All fault suites passed."
