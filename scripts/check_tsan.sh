#!/usr/bin/env bash
# Builds the ThreadSanitizer configuration and runs every concurrency
# test suite under it: the thread pool, the deterministic parallel
# clustering, the sharded buffer pool / query-session hammer, the
# metrics-registry increment-conservation hammer, the hierarchy
# overlay (thread-pool-parallel witness searches + concurrent CH readers),
# and the query-serving layer (8-thread submit hammer under overload plus
# cancellation racing an immediate shutdown — serve_test), the snapshot
# store's swap hammer (8 reader threads across 50 back-to-back version
# swaps — snapshot_swap_test), and the request-lifecycle chaos battery
# (8 workers under deadline pressure with disk fault schedules, retries,
# breaker trips and mid-flight cancellation — chaos_serve_test), and the
# sharded network file's 8-thread reader hammer (per-thread facade
# sessions over 4 shards, with exact IoStats conservation — shard_test).
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

BUILD="${1:-build-tsan}"
TESTS='thread_pool_test|cluster_determinism_test|buffer_pool_concurrency_test|metrics_test|hierarchy_test|serve_test|snapshot_swap_test|chaos_serve_test|shard_test'

# No explicit generator: reuse whatever an existing cache was made with.
cmake -B "$BUILD" -S . -DCCAM_TSAN=ON
cmake --build "$BUILD" --target \
  thread_pool_test cluster_determinism_test buffer_pool_concurrency_test \
  metrics_test hierarchy_test serve_test snapshot_swap_test \
  chaos_serve_test shard_test
ctest --test-dir "$BUILD" -R "$TESTS" --output-on-failure

echo "TSan: all concurrency tests passed with zero reported races."
