#!/usr/bin/env bash
# Single-entry CI gate: runs the three acceptance stages in sequence and
# prints a summary table. Any stage failing makes the script exit nonzero,
# but later stages still run so one CI invocation reports everything.
#
#   1. tier-1    — default `ctest` suite (fast correctness tests)
#   2. metrics   — tools/stats: end-to-end observability smoke (durable
#                  workload with the registry attached; every instrumented
#                  family must collect nonzero data)
#   3. perf      — scripts/check_perf.sh --smoke: bench JSON artifacts
#                  round-trip through the regression gate
#   4. serve     — bench/serve_load in smoke mode: short load through the
#                  query-serving layer; the binary itself gates on nonzero
#                  qps, zero batched-vs-serial equivalence mismatches, and
#                  IoStats conservation (wall-clock speedup gates are
#                  skipped in the smoke run — they belong to full perf runs)
#   5. swap      — snapshot store: the 8-reader swap hammer, a quick
#                  mid-swap crashsim sweep over every snapshot.* failpoint
#                  (recovery must land on exactly the old or exactly the
#                  new version), and bench/swap_availability emitting
#                  BENCH_swap_availability.json (reader p99 during reorg
#                  vs quiesced — scripts/check_perf.sh diffs it)
#   6. shard     — sharded network file: the differential oracle + reader
#                  hammer suite (tests/shard_test), the ccam_cli shard
#                  subcommand's sharded-vs-unsharded check, and
#                  bench/shard_scaling emitting BENCH_shard_scaling.json
#                  (route results and the 1-shard accounting are gated in
#                  the binary; the artifact is diffed by check_perf.sh)
#   7. chaos     — scripts/check_chaos.sh: request-lifecycle chaos battery
#                  (serve hammer under deadline pressure with disk fault
#                  schedules, quarantine/read-retry suite, delta-log
#                  recovery fuzz under a concurrent reader)
#   8. faults    — scripts/check_faults.sh: fault-injection + crash
#                  consistency sweeps, differential oracle, strict durable
#                  crashsim with JSON gating
#   9. tsan      — scripts/check_tsan.sh: concurrency suites under
#                  ThreadSanitizer (separate build directory)
#
# Usage: scripts/ci.sh [build-dir] [tsan-build-dir]
#        (defaults: build, build-tsan)
set -uo pipefail

BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"
cd "$(dirname "$0")/.."

declare -a STAGE_NAMES=() STAGE_RESULTS=()
FAILED=0

run_stage() {
  local name="$1"; shift
  echo
  echo "=== ci: $name ==="
  if "$@"; then
    STAGE_RESULTS+=("PASS")
  else
    STAGE_RESULTS+=("FAIL")
    FAILED=1
  fi
  STAGE_NAMES+=("$name")
}

tier1() {
  cmake -B "$BUILD" -S . &&
  cmake --build "$BUILD" -j "$(nproc)" &&
  ctest --test-dir "$BUILD" --output-on-failure
}

metrics() {
  cmake --build "$BUILD" --target stats -j "$(nproc)" &&
  "$BUILD/tools/stats" > /dev/null
}

serve_smoke() {
  cmake --build "$BUILD" --target serve_load -j "$(nproc)" &&
  CCAM_SERVE_DURATION_MS=400 CCAM_SERVE_QPS=8000 CCAM_SERVE_SKIP_GATE=1 \
    "$BUILD/bench/serve_load"
}

shard_stage() {
  cmake --build "$BUILD" --target shard_test ccam_cli shard_scaling \
    -j "$(nproc)" || return 1
  "$BUILD/tests/shard_test" || return 1
  local net="${TMPDIR:-/tmp}/ccam_ci_shard.net"
  "$BUILD/tools/ccam_cli" generate --out "$net" --rows 16 --cols 16 \
    --seed 5 > /dev/null || return 1
  "$BUILD/tools/ccam_cli" shard --net "$net" --page-size 512 --shards 4 \
    --routes 32 || return 1
  CCAM_SHARD_ROUTES=60 "$BUILD/bench/shard_scaling"
}

swap_stage() {
  cmake --build "$BUILD" --target snapshot_swap_test crashsim \
    swap_availability -j "$(nproc)" || return 1
  "$BUILD/tests/snapshot_swap_test" || return 1
  local fp
  for fp in snapshot.log.append snapshot.log.flush snapshot.build \
            snapshot.publish snapshot.retire; do
    "$BUILD/tools/crashsim" --snapshot --failpoint="$fp" --points=6 \
      --dir="${TMPDIR:-/tmp}/ccam_ci_swap_${fp//./_}" || return 1
  done
  CCAM_SWAP_BENCH_OPS=4000 CCAM_SWAP_BENCH_SWAPS=4 \
    "$BUILD/bench/swap_availability"
}

run_stage "tier-1 (ctest)" tier1
run_stage "metrics (tools/stats)" metrics
run_stage "perf (check_perf.sh --smoke)" scripts/check_perf.sh --smoke "$BUILD"
run_stage "serve (serve_load smoke)" serve_smoke
run_stage "swap (hammer + mid-swap crashsim)" swap_stage
run_stage "shard (oracle + hammer + bench)" shard_stage
run_stage "chaos (check_chaos.sh)" scripts/check_chaos.sh "$BUILD"
run_stage "faults (check_faults.sh)" scripts/check_faults.sh "$BUILD"
run_stage "tsan (check_tsan.sh)" scripts/check_tsan.sh "$TSAN_BUILD"

echo
echo "=== ci summary ==="
printf '%-28s %s\n' "stage" "result"
printf '%-28s %s\n' "-----" "------"
for i in "${!STAGE_NAMES[@]}"; do
  printf '%-28s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done

exit "$FAILED"
