#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for bench in "$BUILD"/bench/*; do
  [ -x "$bench" ] || continue
  echo
  echo "===== $(basename "$bench") ====="
  "$bench"
done
