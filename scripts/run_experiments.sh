#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations.
# Usage: scripts/run_experiments.sh [--threads N[,M,...]] [build-dir]
#   --threads  thread counts swept by the clustering benches (exported as
#              CCAM_BENCH_THREADS; default 1,2,4,8).
set -euo pipefail

BUILD=build
while [ $# -gt 0 ]; do
  case "$1" in
    --threads)
      [ $# -ge 2 ] || { echo "--threads needs a value" >&2; exit 2; }
      export CCAM_BENCH_THREADS="$2"
      shift 2
      ;;
    --threads=*)
      export CCAM_BENCH_THREADS="${1#--threads=}"
      shift
      ;;
    *)
      BUILD="$1"
      shift
      ;;
  esac
done

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for bench in "$BUILD"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  echo
  echo "===== $(basename "$bench") ====="
  "$bench"
done

echo
echo "===== machine-readable artifacts ====="
ls -l BENCH_*.json 2>/dev/null || echo "(none emitted)"
