// Serving-layer load bench: open-loop Poisson traffic from many tenants
// (zipf hot-spot skew over the file's pages, users drawn from a space of
// millions) against the QueryService, region-batched vs unbatched.
//
// The service runs over a CCAM-S image with a deliberately small buffer
// pool and a simulated per-read disk latency, so throughput is
// disk-bound — exactly the regime where region batching pays: grouping
// concurrent same-region requests onto one page pin turns their page
// fetches into buffer hits. The offered rate is set above either mode's
// capacity, so completed-requests/second measures service capacity (the
// admission controller sheds the rest with typed Overloaded rejections).
//
// Three phases, all appended to BENCH_serve_load.json:
//   * saturation: batched vs unbatched qps / latency / disk reads;
//   * low_load:   offered rate far below capacity — batching must not
//     hurt p99 when there is nothing to batch (bounded-window contract);
//   * equivalence: every pooled request answered by the batched service
//     must match a serial single-session oracle field for field.
//
// The binary self-gates (nonzero exit) on: zero qps, any equivalence
// mismatch, broken conservation, or batched capacity not beating
// unbatched by >= 1.5x qps or >= 25% fewer disk reads. scripts/ci.sh's
// `serve` stage relies on that.
//
// Env knobs: CCAM_SERVE_DURATION_MS (default 1500), CCAM_SERVE_QPS
// (saturation offered rate, default 24000), CCAM_BENCH_DISK_LAT_US
// (default 100), CCAM_SERVE_SKIP_GATE=1 (report without gating — for
// debug-build smoke runs where wall-clock ratios are meaningless),
// CCAM_SERVE_DEADLINE_US (per-request deadline budget; default 0 = off.
// When set, an extra `deadline` phase runs batched at the saturation
// rate with every request carrying submit+budget, reporting the miss
// rate — off by default so the standard artifact stays bit-identical).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/query_session.h"
#include "src/query/aggregate.h"
#include "src/query/hierarchy.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/serve/loadgen.h"
#include "src/serve/query_service.h"

namespace ccam {
namespace bench {
namespace {

const char* kImagePath = "bench_serve_load.img";
constexpr size_t kPoolPages = 32;
constexpr int kWorkers = 8;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(v);
  }
  return fallback;
}

std::unique_ptr<NetworkFile> OpenFile(uint32_t disk_lat_us) {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = kPoolPages;
  auto am = MakeMethod(Method::kCcamS, options);
  if (!am->OpenImage(kImagePath).ok()) return nullptr;
  if (!am->BuildHierarchyOverlay().ok()) return nullptr;
  am->disk()->SetSimulatedReadLatencyMicros(disk_lat_us);
  return am;
}

serve::QueryServiceOptions ServiceOptions(bool batched) {
  serve::QueryServiceOptions options;
  options.num_workers = kWorkers;
  options.max_queue_depth = 2048;
  options.max_batch = 32;
  options.region_batching = batched;
  options.region_affinity = batched;
  return options;
}

/// One load phase: fresh service over a cold pool, one RunLoad.
serve::LoadReport RunPhase(NetworkFile* file,
                           const std::vector<serve::ServeRequest>& pool,
                           bool batched, const serve::LoadgenOptions& gen) {
  (void)file->buffer_pool()->Reset();  // cold start for a fair comparison
  serve::QueryService service(file, ServiceOptions(batched));
  serve::LoadReport report = serve::RunLoad(&service, file, pool, gen);
  service.Shutdown(/*drain=*/true);
  return report;
}

/// Serial oracle: answers `request` on a plain single-threaded session.
serve::ServeResponse Oracle(QuerySession* session,
                            const serve::ServeRequest& request) {
  serve::ServeResponse response;
  switch (request.op) {
    case serve::ServeOp::kRouteEval: {
      auto r = EvaluateRoute(session, request.route);
      if (r.ok()) {
        response.cost = r.value().total_cost;
        response.num_edges = r.value().num_edges;
      } else {
        response.status = r.status();
      }
      break;
    }
    case serve::ServeOp::kAStar: {
      auto r = ShortestPathAStar(session, request.route.nodes.front(),
                                 request.route.nodes.back());
      if (r.ok()) {
        response.cost = r.value().cost;
        response.num_edges =
            r.value().path.empty() ? 0 : r.value().path.size() - 1;
        response.path = r.value().path;
      } else {
        response.status = r.status();
      }
      break;
    }
    case serve::ServeOp::kHierarchy: {
      auto r = ShortestPathCH(session, request.route.nodes.front(),
                              request.route.nodes.back());
      if (r.ok()) {
        response.cost = r.value().cost;
        response.num_edges =
            r.value().path.empty() ? 0 : r.value().path.size() - 1;
        response.path = r.value().path;
      } else {
        response.status = r.status();
      }
      break;
    }
    case serve::ServeOp::kAggregate: {
      auto r = AggregateRouteUnit(session, request.unit);
      if (r.ok()) {
        response.cost = r.value().total_edge_cost;
        response.num_edges = r.value().num_edges;
      } else {
        response.status = r.status();
      }
      break;
    }
  }
  return response;
}

/// Submits every pooled request to a batched service and diffs each
/// response against the serial oracle. Returns the mismatch count.
size_t EquivalenceCheck(NetworkFile* file,
                        const std::vector<serve::ServeRequest>& pool) {
  std::vector<serve::ServeResponse> expected;
  expected.reserve(pool.size());
  {
    auto session = file->OpenSession();
    for (const serve::ServeRequest& request : pool) {
      expected.push_back(Oracle(session.get(), request));
    }
  }
  // The whole pool is submitted at once: lift the admission bounds so
  // every request executes (this phase checks answers, not shedding).
  serve::QueryServiceOptions options = ServiceOptions(/*batched=*/true);
  options.max_queue_depth = pool.size() + 1;
  serve::QueryService service(file, options);
  std::vector<serve::ServeTicketPtr> tickets;
  tickets.reserve(pool.size());
  for (const serve::ServeRequest& request : pool) {
    tickets.push_back(service.Submit(request));
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    const serve::ServeResponse& got = tickets[i]->Wait();
    const serve::ServeResponse& want = expected[i];
    if (got.status.code() != want.status.code() || got.cost != want.cost ||
        got.num_edges != want.num_edges || got.path != want.path) {
      if (++mismatches <= 5) {
        std::fprintf(stderr,
                     "equivalence mismatch at request %zu (%s): "
                     "cost %.6f vs %.6f, edges %llu vs %llu\n",
                     i, serve::ServeOpName(pool[i].op), got.cost, want.cost,
                     static_cast<unsigned long long>(got.num_edges),
                     static_cast<unsigned long long>(want.num_edges));
      }
    }
  }
  service.Shutdown(/*drain=*/true);
  return mismatches;
}

int Run() {
  const uint32_t disk_lat_us =
      static_cast<uint32_t>(EnvU64("CCAM_BENCH_DISK_LAT_US", 100));
  const double duration_sec =
      static_cast<double>(EnvU64("CCAM_SERVE_DURATION_MS", 1500)) * 1e-3;
  const double offered_qps =
      static_cast<double>(EnvU64("CCAM_SERVE_QPS", 48000));
  const bool skip_gate = EnvU64("CCAM_SERVE_SKIP_GATE", 0) != 0;
  const uint64_t deadline_budget_us = EnvU64("CCAM_SERVE_DEADLINE_US", 0);

  // ~3.5k-node road map, CCAM-S image (created once, reopened per phase
  // set so the pool capacity and overlay are fresh).
  RoadMapOptions gen;
  gen.rows = 64;
  gen.cols = 64;
  gen.nodes_to_remove = 64 / 4;
  gen.seed = 1064;
  Network net = GenerateRoadMap(gen);
  {
    AccessMethodOptions options;
    options.page_size = 1024;
    auto am = MakeMethod(Method::kCcamS, options);
    if (!am->Create(net).ok() || !am->SaveImage(kImagePath).ok()) {
      std::fprintf(stderr, "serve_load: create failed\n");
      return 1;
    }
  }
  auto file = OpenFile(disk_lat_us);
  if (!file) {
    std::fprintf(stderr, "serve_load: open failed\n");
    return 1;
  }
  std::printf(
      "Serve load: %zu nodes / %zu edges, CCAM-S, %zu-page pool, "
      "%d workers, disk read latency %u us\n\n",
      net.NumNodes(), net.NumEdges(), kPoolPages, kWorkers, disk_lat_us);

  serve::LoadgenOptions load;
  load.tenants = 8;
  load.users = 2000000;
  load.zipf_theta = 1.1;
  load.route_hops = 5;
  load.offered_qps = offered_qps;
  load.duration_sec = duration_sec;
  load.pool_size = 4096;
  std::vector<serve::ServeRequest> pool =
      serve::BuildRequestPool(file.get(), load);
  if (pool.empty()) {
    std::fprintf(stderr, "serve_load: empty request pool\n");
    return 1;
  }

  BenchJsonWriter json("serve_load");
  TablePrinter table({"phase", "mode", "qps", "p50 us", "p95 us", "p99 us",
                      "reject rate", "occupancy", "reads/query",
                      "hit rate", "conserved"});
  auto emit = [&](const char* phase, const char* mode,
                  const serve::LoadReport& r) {
    const double reads_per_query =
        r.completed == 0 ? 0.0
                         : static_cast<double>(r.disk_reads) /
                               static_cast<double>(r.completed);
    table.AddRow({phase, mode, Fmt(r.qps, 0), std::to_string(r.p50_us),
                  std::to_string(r.p95_us), std::to_string(r.p99_us),
                  Fmt(r.reject_rate, 3), Fmt(r.mean_batch_occupancy, 2),
                  Fmt(reads_per_query, 3), Fmt(r.hit_rate, 3),
                  r.conserved ? "yes" : "NO"});
    json.AddRecord(phase,
                   {{"mode", mode},
                    {"workers", std::to_string(kWorkers)},
                    {"offered_qps", Fmt(offered_qps, 0)},
                    {"qps", Fmt(r.qps, 1)},
                    {"p50_us", std::to_string(r.p50_us)},
                    {"p95_us", std::to_string(r.p95_us)},
                    {"p99_us", std::to_string(r.p99_us)},
                    {"reject_rate", Fmt(r.reject_rate, 4)},
                    {"batch_occupancy", Fmt(r.mean_batch_occupancy, 3)},
                    {"batched_rate", Fmt(r.batched_fraction, 4)},
                    {"reads_per_query", Fmt(reads_per_query, 4)},
                    {"hit_rate", Fmt(r.hit_rate, 4)},
                    {"conserved", r.conserved ? "true" : "false"}});
  };

  // --- Saturation: capacity batched vs unbatched -------------------------
  serve::LoadReport unbatched = RunPhase(file.get(), pool, false, load);
  serve::LoadReport batched = RunPhase(file.get(), pool, true, load);
  emit("saturation", "unbatched", unbatched);
  emit("saturation", "batched", batched);

  // --- Low load: batching must not tax p99 when idle ---------------------
  serve::LoadgenOptions low = load;
  low.offered_qps = 200.0;
  serve::LoadReport low_unbatched = RunPhase(file.get(), pool, false, low);
  serve::LoadReport low_batched = RunPhase(file.get(), pool, true, low);
  emit("low_load", "unbatched", low_unbatched);
  emit("low_load", "batched", low_batched);

  // --- Deadline pressure (opt-in): saturation rate, every request with a
  // submit+budget deadline. Expired requests are shed at admission or
  // dequeue rather than executed, so capacity is spent only on traffic
  // that can still make it. Off by default: the standard BENCH json must
  // stay bit-identical in its deterministic fields.
  if (deadline_budget_us != 0) {
    serve::LoadgenOptions pressured = load;
    pressured.deadline_budget_us = deadline_budget_us;
    serve::LoadReport deadline = RunPhase(file.get(), pool, true, pressured);
    emit("deadline", "batched", deadline);
    const double miss_rate =
        deadline.submitted == 0
            ? 0.0
            : static_cast<double>(deadline.deadline_failures) /
                  static_cast<double>(deadline.submitted);
    std::printf("deadline phase: budget %llu us, %llu missed of %llu "
                "(%.1f%%)\n",
                static_cast<unsigned long long>(deadline_budget_us),
                static_cast<unsigned long long>(deadline.deadline_failures),
                static_cast<unsigned long long>(deadline.submitted),
                miss_rate * 100.0);
    json.AddRecord("deadline_pressure",
                   {{"budget_us", std::to_string(deadline_budget_us)},
                    {"deadline_failures",
                     std::to_string(deadline.deadline_failures)},
                    {"miss_rate", Fmt(miss_rate, 4)}});
  }

  table.Print();

  const double speedup =
      unbatched.qps > 0 ? batched.qps / unbatched.qps : 0.0;
  const double unbatched_rpq =
      unbatched.completed == 0 ? 0.0
                               : static_cast<double>(unbatched.disk_reads) /
                                     static_cast<double>(unbatched.completed);
  const double batched_rpq =
      batched.completed == 0 ? 0.0
                             : static_cast<double>(batched.disk_reads) /
                                   static_cast<double>(batched.completed);
  const double read_reduction =
      unbatched_rpq > 0 ? 1.0 - batched_rpq / unbatched_rpq : 0.0;
  std::printf(
      "\nbatched vs unbatched: %.2fx qps, %.1f%% fewer disk reads per "
      "query; low-load p99 %llu us (batched) vs %llu us (unbatched)\n",
      speedup, read_reduction * 100.0,
      static_cast<unsigned long long>(low_batched.p99_us),
      static_cast<unsigned long long>(low_unbatched.p99_us));
  json.AddRecord("summary",
                 {{"qps_speedup", Fmt(speedup, 3)},
                  {"read_reduction_rate", Fmt(read_reduction, 4)},
                  {"low_load_p99_batched_us",
                   std::to_string(low_batched.p99_us)},
                  {"low_load_p99_unbatched_us",
                   std::to_string(low_unbatched.p99_us)}});

  // --- Equivalence oracle ------------------------------------------------
  size_t mismatches = EquivalenceCheck(file.get(), pool);
  std::printf("equivalence: %zu mismatches over %zu requests\n", mismatches,
              pool.size());

  // --- Gates -------------------------------------------------------------
  int failures = 0;
  if (mismatches != 0) {
    std::fprintf(stderr, "serve_load: FAIL equivalence (%zu mismatches)\n",
                 mismatches);
    ++failures;
  }
  for (const serve::LoadReport* r :
       {&unbatched, &batched, &low_unbatched, &low_batched}) {
    if (r->qps <= 0.0 || r->completed == 0) {
      std::fprintf(stderr, "serve_load: FAIL zero throughput in a phase\n");
      ++failures;
    }
    if (!r->conserved) {
      std::fprintf(stderr,
                   "serve_load: FAIL conservation (session reads %llu != "
                   "disk reads %llu)\n",
                   static_cast<unsigned long long>(r->session_reads),
                   static_cast<unsigned long long>(r->disk_reads));
      ++failures;
    }
  }
  if (!skip_gate) {
    if (speedup < 1.5 && read_reduction < 0.25) {
      std::fprintf(stderr,
                   "serve_load: FAIL batching gate (%.2fx qps, %.1f%% read "
                   "reduction; need >= 1.5x or >= 25%%)\n",
                   speedup, read_reduction * 100.0);
      ++failures;
    }
    // Bounded-window contract: at low load batching may not tax p99 by
    // more than 10% (plus a small absolute floor against timer jitter).
    const double p99_limit =
        static_cast<double>(low_unbatched.p99_us) * 1.10 + 200.0;
    if (static_cast<double>(low_batched.p99_us) > p99_limit) {
      std::fprintf(stderr,
                   "serve_load: FAIL low-load p99 (batched %llu us > limit "
                   "%.0f us)\n",
                   static_cast<unsigned long long>(low_batched.p99_us),
                   p99_limit);
      ++failures;
    }
  }
  std::remove(kImagePath);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
