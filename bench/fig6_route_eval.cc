// Reproduces Figure 6 of the paper: "Effect of Route Length" on route
// evaluation I/O.
//
// Setup (paper Section 4.3): four sets of 100 random-walk routes with
// lengths 10, 20, 30, 40; edge access weights are derived by counting how
// often each edge is traversed by the routes (the non-uniform / WCRR
// case); disk block size 2048; a single one-page data buffer. Each query
// runs Find(n1) followed by Get-A-successor() per hop.
//
// Expected shape: I/O grows with route length for every method; CCAM-S and
// CCAM-D are lowest at every length.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  const std::vector<int> lengths = {10, 20, 30, 40};

  // Weights from the union of all route sets (the workload the file is
  // tuned for), as in the paper's WCRR experiments.
  std::vector<std::vector<Route>> route_sets;
  std::vector<Route> all_routes;
  for (size_t i = 0; i < lengths.size(); ++i) {
    route_sets.push_back(
        GenerateRandomWalkRoutes(net, 100, lengths[i], 1000 + i));
    all_routes.insert(all_routes.end(), route_sets.back().begin(),
                      route_sets.back().end());
  }
  DeriveEdgeWeightsFromRoutes(&net, all_routes);

  std::printf("Figure 6: route-evaluation I/O vs route length (block = "
              "2048, one-page buffer, weights from %zu routes)\n\n",
              all_routes.size());

  BenchJsonWriter json("fig6_route_eval");
  TablePrinter table({"Method", "L=10", "L=20", "L=30", "L=40", "WCRR"});
  for (Method m : AllMethods()) {
    AccessMethodOptions options;
    options.page_size = 2048;
    options.buffer_pool_pages = 1;  // the paper's single-buffer assumption
    // CCAM variants cluster by the access weights in this experiment.
    options.use_access_weights =
        (m == Method::kCcamS || m == Method::kCcamD);
    auto am = MakeMethod(m, options);
    Status s = am->Create(net);
    if (!s.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", MethodName(m),
                   s.ToString().c_str());
      return 1;
    }
    std::vector<std::string> row{MethodName(m)};
    for (size_t i = 0; i < lengths.size(); ++i) {
      uint64_t total = 0;
      size_t evaluated = 0;
      for (const Route& route : route_sets[i]) {
        (void)am->buffer_pool()->Reset();
        auto res = EvaluateRoute(am.get(), route);
        if (!res.ok()) continue;
        total += res->page_accesses;
        ++evaluated;
      }
      row.push_back(Fmt(static_cast<double>(total) / evaluated, 2));
    }
    row.push_back(Fmt(ComputeWcrr(net, am->PageMap()), 4));
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("random_walk_routes", table);
  std::printf(
      "\nExpected shape (paper Fig. 6): accesses grow with route length; "
      "CCAM-S and CCAM-D below every other method at all lengths.\n");

  // --- Robustness variant (ours): commuter routes instead of random
  // walks. Real route-evaluation queries follow shortest paths (the IVHS
  // scenario), which spread across the map instead of loitering locally —
  // a harder workload for every method. The ordering must survive.
  Network net2 = PaperNetwork();
  std::vector<std::vector<Route>> sp_sets;
  std::vector<Route> sp_all;
  for (size_t i = 0; i < lengths.size(); ++i) {
    auto set = GenerateShortestPathRoutes(net2, 100, lengths[i], 500 + i);
    // Trim each route to exactly the requested length for comparability.
    for (Route& r : set) r.nodes.resize(lengths[i]);
    sp_sets.push_back(set);
    sp_all.insert(sp_all.end(), set.begin(), set.end());
  }
  DeriveEdgeWeightsFromRoutes(&net2, sp_all);

  std::printf("\nVariant: shortest-path (commuter) routes, same setup\n\n");
  TablePrinter sp_table({"Method", "L=10", "L=20", "L=30", "L=40", "WCRR"});
  for (Method m : AllMethods()) {
    AccessMethodOptions options;
    options.page_size = 2048;
    options.buffer_pool_pages = 1;
    options.use_access_weights =
        (m == Method::kCcamS || m == Method::kCcamD);
    auto am = MakeMethod(m, options);
    if (!am->Create(net2).ok()) return 1;
    std::vector<std::string> row{MethodName(m)};
    for (size_t i = 0; i < lengths.size(); ++i) {
      uint64_t total = 0;
      size_t evaluated = 0;
      for (const Route& route : sp_sets[i]) {
        (void)am->buffer_pool()->Reset();
        auto res = EvaluateRoute(am.get(), route);
        if (!res.ok()) continue;
        total += res->page_accesses;
        ++evaluated;
      }
      row.push_back(evaluated == 0
                        ? std::string("n/a")
                        : Fmt(static_cast<double>(total) / evaluated, 2));
    }
    row.push_back(Fmt(ComputeWcrr(net2, am->PageMap()), 4));
    sp_table.AddRow(std::move(row));
  }
  sp_table.Print();
  json.AddTable("shortest_path_routes", sp_table);

  // --- Does clustering by the access weights (WCRR) actually pay off
  // over uniform-weight (CRR) clustering, on the workload the weights
  // came from? Quantifies the use_access_weights knob.
  std::printf("\nWCRR- vs CRR-clustered CCAM-S on the random-walk "
              "workload (L = 30)\n\n");
  TablePrinter knob_table({"Clustering", "io/route", "CRR", "WCRR"});
  for (bool weighted : {true, false}) {
    AccessMethodOptions options;
    options.page_size = 2048;
    options.buffer_pool_pages = 1;
    options.use_access_weights = weighted;
    Ccam am(options, CcamCreateMode::kStatic);
    if (!am.Create(net).ok()) return 1;
    uint64_t total = 0;
    size_t evaluated = 0;
    for (const Route& route : route_sets[2]) {  // the L = 30 set
      (void)am.buffer_pool()->Reset();
      auto res = EvaluateRoute(&am, route);
      if (!res.ok()) continue;
      total += res->page_accesses;
      ++evaluated;
    }
    knob_table.AddRow({weighted ? "by access weights" : "uniform",
                       Fmt(static_cast<double>(total) / evaluated, 2),
                       Fmt(ComputeCrr(net, am.PageMap()), 4),
                       Fmt(ComputeWcrr(net, am.PageMap()), 4)});
  }
  knob_table.Print();
  json.AddTable("clustering_knob", knob_table);
  std::printf(
      "\nExpected shape: weighted clustering trades a little CRR for "
      "higher WCRR and lower I/O on the workload it was tuned for.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
