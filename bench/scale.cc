// Scale sweep: CRR and create cost as the network grows.
//
// The paper motivates incremental create with "road-maps are really large
// databases ... and thus may not fit inside main memory". This bench
// grows a synthetic road map from ~256 to ~8k nodes and reports, for
// CCAM-S and CCAM-D: CRR, data pages and creation wall-clock, confirming
// that connectivity clustering holds its CRR advantage at every size.
//
// A second table sweeps ClusterOptions::num_threads for the CCAM-S build
// (task-parallel recursive bisection). The clustering is bit-identical at
// every thread count, so the sweep varies only wall-clock; the table
// asserts that by printing a single CRR column and a "same pages" flag.
// Every (nodes, threads) cell is also appended to BENCH_scale.json at the
// repository root as one machine-readable record (bench_util JSON schema).

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace ccam {
namespace bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int Run() {
  std::printf("Scale: CRR and creation cost vs network size (block = 1 "
              "KiB)\n\n");
  TablePrinter table({"nodes", "edges", "CCAM-S CRR", "CCAM-S ms",
                      "CCAM-D CRR", "CCAM-D ms", "BFS-AM CRR"});

  const std::vector<int> thread_counts = BenchThreadCounts();
  TablePrinter threads_table([&] {
    std::vector<std::string> headers = {"nodes", "CRR", "pages"};
    for (int t : thread_counts) {
      headers.push_back("t=" + std::to_string(t) + " ms");
    }
    headers.push_back("same pages");
    return headers;
  }());

  BenchJsonWriter json("scale");
  auto emit = [&](const Network& net, const char* algorithm, int threads,
                  double create_ms, double crr, size_t pages) {
    json.AddRecord("thread_sweep",
                   {{"nodes", std::to_string(net.NumNodes())},
                    {"edges", std::to_string(net.NumEdges())},
                    {"algorithm", algorithm},
                    {"threads", std::to_string(threads)},
                    {"create_ms", Fmt(create_ms, 3)},
                    {"crr", Fmt(crr, 6)},
                    {"pages", std::to_string(pages)}});
  };

  for (int side : {16, 23, 32, 45, 64, 91}) {
    RoadMapOptions gen;
    gen.rows = side;
    gen.cols = side;
    gen.nodes_to_remove = side / 4;
    gen.seed = 1000 + side;
    Network net = GenerateRoadMap(gen);

    auto build = [&](Method m, double* crr, double* ms) {
      AccessMethodOptions options;
      options.page_size = 1024;
      auto am = MakeMethod(m, options);
      auto t0 = std::chrono::steady_clock::now();
      Status s = am->Create(net);
      *ms = MsSince(t0);
      if (!s.ok()) {
        *crr = -1;
        *ms = -1;
        return;
      }
      *crr = ComputeCrr(net, am->PageMap());
    };
    double crr_s, ms_s, crr_d, ms_d, crr_b, ms_b;
    build(Method::kCcamS, &crr_s, &ms_s);
    build(Method::kCcamD, &crr_d, &ms_d);
    build(Method::kBfs, &crr_b, &ms_b);
    table.AddRow({std::to_string(net.NumNodes()),
                  std::to_string(net.NumEdges()), Fmt(crr_s, 4),
                  Fmt(ms_s, 1), Fmt(crr_d, 4), Fmt(ms_d, 1),
                  Fmt(crr_b, 4)});

    // Thread sweep over the CCAM-S build: identical pages expected at
    // every count, only the wall-clock should move.
    std::vector<std::string> row = {std::to_string(net.NumNodes())};
    NodePageMap reference;
    bool identical = true;
    double sweep_crr = -1;
    size_t sweep_pages = 0;
    std::vector<double> sweep_ms;
    for (int threads : thread_counts) {
      AccessMethodOptions options;
      options.page_size = 1024;
      options.num_threads = threads;
      Ccam am(options, CcamCreateMode::kStatic);
      auto t0 = std::chrono::steady_clock::now();
      Status s = am.Create(net);
      double ms = MsSince(t0);
      sweep_ms.push_back(s.ok() ? ms : -1);
      if (!s.ok()) {
        identical = false;
        continue;
      }
      if (sweep_crr < 0) {
        reference = am.PageMap();
        sweep_crr = ComputeCrr(net, reference);
        sweep_pages = am.NumDataPages();
      } else if (am.PageMap() != reference) {
        identical = false;
      }
      emit(net, "ccam-s", threads, ms, ComputeCrr(net, am.PageMap()),
           am.NumDataPages());
    }
    row.push_back(Fmt(sweep_crr, 4));
    row.push_back(std::to_string(sweep_pages));
    for (double ms : sweep_ms) row.push_back(Fmt(ms, 1));
    row.push_back(identical ? "yes" : "NO");
    threads_table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("crr_vs_size", table);
  std::printf(
      "\nExpected shape: CCAM-S CRR roughly flat across sizes (clustering "
      "quality is local); CCAM-D close behind at a fraction of no cost "
      "beyond the insert stream; BFS-AM CRR degrades with size.\n");

  std::printf("\nCCAM-S create wall-clock vs clustering threads "
              "(CCAM_BENCH_THREADS to override the sweep)\n\n");
  threads_table.Print();
  json.AddTable("create_wallclock", threads_table);
  std::printf(
      "\n\"same pages\" = every thread count produced the identical "
      "node-to-page assignment (the parallel clusterer's determinism "
      "contract). Speedups need real cores; on a single-CPU host the "
      "sweep only demonstrates the determinism.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
