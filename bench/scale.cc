// Scale sweep: CRR and create cost as the network grows.
//
// The paper motivates incremental create with "road-maps are really large
// databases ... and thus may not fit inside main memory". This bench
// grows a synthetic road map from ~256 to ~8k nodes and reports, for
// CCAM-S and CCAM-D: CRR, data pages and creation wall-clock, confirming
// that connectivity clustering holds its CRR advantage at every size.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  std::printf("Scale: CRR and creation cost vs network size (block = 1 "
              "KiB)\n\n");
  TablePrinter table({"nodes", "edges", "CCAM-S CRR", "CCAM-S ms",
                      "CCAM-D CRR", "CCAM-D ms", "BFS-AM CRR"});
  for (int side : {16, 23, 32, 45, 64, 91}) {
    RoadMapOptions gen;
    gen.rows = side;
    gen.cols = side;
    gen.nodes_to_remove = side / 4;
    gen.seed = 1000 + side;
    Network net = GenerateRoadMap(gen);

    auto build = [&](Method m, double* crr, double* ms) {
      AccessMethodOptions options;
      options.page_size = 1024;
      auto am = MakeMethod(m, options);
      auto t0 = std::chrono::steady_clock::now();
      Status s = am->Create(net);
      auto t1 = std::chrono::steady_clock::now();
      if (!s.ok()) {
        *crr = -1;
        *ms = -1;
        return;
      }
      *crr = ComputeCrr(net, am->PageMap());
      *ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    double crr_s, ms_s, crr_d, ms_d, crr_b, ms_b;
    build(Method::kCcamS, &crr_s, &ms_s);
    build(Method::kCcamD, &crr_d, &ms_d);
    build(Method::kBfs, &crr_b, &ms_b);
    table.AddRow({std::to_string(net.NumNodes()),
                  std::to_string(net.NumEdges()), Fmt(crr_s, 4),
                  Fmt(ms_s, 1), Fmt(crr_d, 4), Fmt(ms_d, 1),
                  Fmt(crr_b, 4)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: CCAM-S CRR roughly flat across sizes (clustering "
      "quality is local); CCAM-D close behind at a fraction of no cost "
      "beyond the insert stream; BFS-AM CRR degrades with size.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
