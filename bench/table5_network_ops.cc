// Reproduces Table 5 of the paper: "I/O cost for Network Operations".
//
// Disk block size 1 KiB, Minneapolis-like road map, uniform weights. Each
// operation is measured on a random 50% sample of the nodes; operations
// that trigger a page split or merge are excluded from the averages, per
// the paper ("page underflows and overflows in the Delete() and Insert()
// operations are ignored to filter out the effect of reorganization
// policies"). Predicted columns come from the algebraic cost model
// (Tables 3-4) with the method's measured alpha / |A| / lambda / gamma.
//
// Expected shape: CCAM lowest on Get-successors, Get-A-successor and
// Delete (it has the highest CRR); Grid File best on Insert.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/cost_model.h"

namespace ccam {
namespace bench {
namespace {

struct OpCosts {
  double get_successors = 0.0;
  double get_a_successor = 0.0;
  double del = 0.0;
  double ins = 0.0;
  double crr = 0.0;
};

OpCosts MeasureMethod(Method m, const Network& net) {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  auto am = MakeMethod(m, options);
  Status s = am->Create(net);
  if (!s.ok()) {
    std::fprintf(stderr, "create failed: %s\n", s.ToString().c_str());
    return {};
  }

  OpCosts costs;
  costs.crr = ComputeCrr(net, am->PageMap());
  Random rng(7);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  size_t sample_size = ids.size() / 2;

  // --- Get-successors(): page of x assumed in memory -------------------
  {
    uint64_t io = 0;
    size_t measured = 0;
    for (size_t i = 0; i < sample_size; ++i) {
      if (!am->Find(ids[i]).ok()) continue;  // brings page(x) into memory
      am->ResetIoStats();
      if (!am->GetSuccessors(ids[i]).ok()) continue;
      io += am->DataIoStats().Accesses();
      ++measured;
    }
    costs.get_successors = static_cast<double>(io) / measured;
  }

  // --- Get-A-successor(): one random successor per sampled node --------
  {
    uint64_t io = 0;
    size_t measured = 0;
    for (size_t i = 0; i < sample_size; ++i) {
      const NetworkNode& node = net.node(ids[i]);
      if (node.succ.empty()) continue;
      NodeId to =
          node.succ[rng.Uniform(static_cast<uint32_t>(node.succ.size()))]
              .node;
      if (!am->Find(ids[i]).ok()) continue;
      am->ResetIoStats();
      if (!am->GetASuccessor(ids[i], to).ok()) continue;
      io += am->DataIoStats().Accesses();
      ++measured;
    }
    costs.get_a_successor = static_cast<double>(io) / measured;
  }

  // --- Delete(): cold buffers per op; restore afterwards (unmeasured) --
  {
    uint64_t io = 0;
    size_t measured = 0;
    for (size_t i = 0; i < sample_size; ++i) {
      auto rec = am->Find(ids[i]);
      if (!rec.ok()) continue;
      (void)am->buffer_pool()->Reset();  // each delete starts cold
      am->ResetIoStats();
      if (!am->DeleteNode(ids[i], ReorgPolicy::kFirstOrder).ok()) continue;
      uint64_t accesses = am->DataIoStats().Accesses();
      if (!am->LastOpChangedStructure()) {
        io += accesses;
        ++measured;
      }
      (void)am->InsertNode(*rec, ReorgPolicy::kFirstOrder);  // restore
    }
    costs.del = static_cast<double>(io) / measured;
  }

  // --- Insert(): build the file on the 50% complement and insert the
  // sampled nodes one by one — the inserted node is genuinely *new* to the
  // file, so its neighbors carry no leftover co-clustering (this is what
  // lets the proximity-based Grid File shine on Insert in the paper).
  {
    std::vector<NodeId> complement(ids.begin() + sample_size, ids.end());
    Network base = net.InducedSubnetwork(complement);
    auto ins_am = MakeMethod(m, options);
    if (!ins_am->Create(base).ok()) return costs;
    uint64_t io = 0;
    size_t measured = 0;
    for (size_t i = 0; i < sample_size; ++i) {
      NodeRecord rec = NodeRecord::FromNetworkNode(ids[i], net.node(ids[i]));
      (void)ins_am->buffer_pool()->Reset();  // each insert starts cold
      ins_am->ResetIoStats();
      if (!ins_am->InsertNode(rec, ReorgPolicy::kFirstOrder).ok()) continue;
      uint64_t accesses = ins_am->DataIoStats().Accesses();
      if (!ins_am->LastOpChangedStructure()) {
        io += accesses;
        ++measured;
      }
    }
    costs.ins = static_cast<double>(io) / measured;
  }
  return costs;
}

int Run() {
  Network net = PaperNetwork();
  std::printf("Table 5: I/O cost for network operations (block = 1 KiB, "
              "ops on a random 50%% node sample)\n");
  std::printf("Network: %zu nodes, %zu edges, |A| = %.3f, lambda = %.3f\n\n",
              net.NumNodes(), net.NumEdges(), net.AvgOutDegree(),
              net.AvgNeighborListSize());

  BenchJsonWriter json("table5_network_ops");
  TablePrinter table({"Method", "GetSuccs act", "GetSuccs pred",
                      "GetASucc act", "GetASucc pred", "Delete act",
                      "Delete pred", "Insert act", "CRR", "gamma"});
  // Table 5 compares CCAM, DFS-AM, Grid File, BFS-AM; we add CCAM-D and
  // WDFS-AM for completeness.
  for (Method m : {Method::kCcamS, Method::kCcamD, Method::kDfs,
                   Method::kWdfs, Method::kGrid, Method::kBfs}) {
    OpCosts costs = MeasureMethod(m, net);
    // Cost-model parameters for this method's file.
    AccessMethodOptions options;
    options.page_size = 1024;
    auto am = MakeMethod(m, options);
    (void)am->Create(net);
    CostModelParams p = MeasureCostModelParams(net, *am);
    table.AddRow({MethodName(m), Fmt(costs.get_successors),
                  Fmt(PredictedGetSuccessorsCost(p)),
                  Fmt(costs.get_a_successor),
                  Fmt(PredictedGetASuccessorCost(p)), Fmt(costs.del),
                  Fmt(PredictedDeleteAccesses(p, ReorgPolicy::kFirstOrder)),
                  Fmt(costs.ins), Fmt(costs.crr, 4), Fmt(p.gamma, 2)});
  }
  table.Print();
  json.AddTable("network_ops", table);
  std::printf(
      "\nPaper reference (CCAM row): GetSuccs 0.627/0.680, GetASucc "
      "0.209/0.239, Delete 3.364/3.532, Insert 4.710, CRR 0.7606.\n"
      "Expected shape: CCAM lowest on the three CRR-bound operations; "
      "Grid File lowest on Insert.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
