// Secondary-index access cost — the paper's future work: "access cost for
// secondary indexes should be modeled and evaluated."
//
// Find() routed through the paged B+ tree under shrinking index buffer
// pools: with a generous pool the index descends entirely in memory (the
// cost-model assumption); with a tiny pool every lookup pays part of the
// tree height in index-page reads. Data-page cost stays one read per
// Find() regardless.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  std::printf("Index access cost: mean index / data page accesses per "
              "Find() over 2000 random lookups (block = 1 KiB)\n\n");

  BenchJsonWriter json("index_cost");
  TablePrinter table({"index pool pages", "tree height",
                      "index IO / find", "data IO / find"});
  for (size_t pool : {4u, 8u, 16u, 32u, 128u}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    options.maintain_bptree_index = true;
    options.index_pool_pages = pool;
    Ccam am(options, CcamCreateMode::kStatic);
    if (!am.Create(net).ok()) return 1;

    Random rng(5);
    const int kLookups = 2000;
    uint64_t index_before = am.IndexIoStats()->Accesses();
    am.ResetIoStats();
    for (int i = 0; i < kLookups; ++i) {
      NodeId id = static_cast<NodeId>(
          rng.Uniform(static_cast<uint32_t>(net.NumNodes())));
      auto rec = am.FindViaIndex(id);
      if (!rec.ok()) return 1;
    }
    double index_io =
        static_cast<double>(am.IndexIoStats()->Accesses() - index_before) /
        kLookups;
    double data_io =
        static_cast<double>(am.DataIoStats().Accesses()) / kLookups;
    table.AddRow({std::to_string(pool),
                  std::to_string(am.bptree_index()->Height()),
                  Fmt(index_io, 3), Fmt(data_io, 3)});
  }
  table.Print();
  json.AddTable("index_cost", table);
  std::printf(
      "\nExpected shape: index I/O falls to ~0 once the pool holds the "
      "tree (the paper's 'index pages are buffered' assumption); data I/O "
      "stays ~(1 - buffer-hit-rate) regardless.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
