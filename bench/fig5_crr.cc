// Reproduces Figure 5 of the paper: "The effect of disk block size on CRR".
//
// For each access method and each disk block size in {512, 1024, 2048,
// 4096}, build the data file over the Minneapolis-like road map with
// uniform edge weights and report the resulting CRR. Expected shape (paper
// Section 4.1): CRR grows with block size for every method; CCAM-S is best
// everywhere, CCAM-D close behind; the Grid File overtakes DFS-AM at large
// blocks; BFS-AM is far behind.

#include <cstdio>

#include "bench/bench_util.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  std::printf("Figure 5: CRR vs disk block size (network: %zu nodes, %zu "
              "edges, uniform weights)\n\n",
              net.NumNodes(), net.NumEdges());

  const std::vector<size_t> block_sizes = {512, 1024, 2048, 4096};
  BenchJsonWriter json("fig5_crr");
  TablePrinter table({"Method", "512", "1024", "2048", "4096"});
  for (Method m : AllMethods()) {
    std::vector<std::string> row{MethodName(m)};
    for (size_t block : block_sizes) {
      AccessMethodOptions options;
      options.page_size = block;
      options.buffer_pool_pages = 8;
      options.seed = 42;
      auto am = MakeMethod(m, options);
      Status s = am->Create(net);
      if (!s.ok()) {
        std::fprintf(stderr, "create %s @%zu failed: %s\n", MethodName(m),
                     block, s.ToString().c_str());
        return 1;
      }
      row.push_back(Fmt(ComputeCrr(net, am->PageMap()), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("crr_vs_block_size", table);
  std::printf(
      "\nPaper reference points (Minneapolis map): CCAM-S ~0.76 at 1 KiB; "
      "BFS-AM ~0.10 at 1 KiB; Grid File overtakes DFS-AM at 4 KiB.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
