// Topology sweep: CCAM on "general networks" beyond road maps.
//
// The paper positions CCAM for *general* networks (the restricted prior
// art handled only DAGs / limited cycles). This bench runs the CRR
// comparison on four structurally different networks: the Minneapolis-like
// road grid, a ring-radial (European) city, a random geometric graph, and
// a scale-free (hub-dominated) network. Includes the min-fill ablation:
// relaxing the paper's half-page MinPgSize buys CRR with extra pages.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/partition/recursive_bisection.h"
#include "src/storage/page.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  struct Topology {
    const char* name;
    Network net;
    size_t page_size;  // scale-free hub records need large blocks
  };
  std::vector<Topology> topologies;
  topologies.push_back({"road grid", PaperNetwork(), 1024});
  topologies.push_back({"ring-radial", GenerateRingRadialCity(10, 32), 1024});
  topologies.push_back(
      {"geometric", GenerateRandomGeometricNetwork(1000, 60.0), 1024});
  topologies.push_back({"scale-free", GenerateScaleFreeNetwork(1000, 2), 4096});

  std::printf("Topology sweep: CRR (1 KiB pages; scale-free uses 4 KiB for "
              "its hub records)\n\n");
  BenchJsonWriter json("topologies");
  TablePrinter table({"Topology", "nodes", "edges", "avg deg", "CCAM-S",
                      "CCAM-D", "DFS-AM", "Grid File", "BFS-AM", "bound"});
  for (Topology& t : topologies) {
    std::vector<std::string> row{t.name, std::to_string(t.net.NumNodes()),
                                 std::to_string(t.net.NumEdges()),
                                 Fmt(t.net.AvgOutDegree(), 2)};
    for (Method m : {Method::kCcamS, Method::kCcamD, Method::kDfs,
                     Method::kGrid, Method::kBfs}) {
      AccessMethodOptions options;
      options.page_size = t.page_size;
      auto am = MakeMethod(m, options);
      Status s = am->Create(t.net);
      row.push_back(s.ok() ? Fmt(ComputeCrr(t.net, am->PageMap()), 3)
                           : std::string("n/a"));
    }
    row.push_back(Fmt(
        CrrUpperBound(t.net, t.page_size - SlottedPage::kHeaderSize,
                      SlottedPage::kSlotOverhead),
        3));
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("topology_crr", table);

  std::printf("\nMin-fill ablation (road grid): MinPgSize fraction vs CRR "
              "and page count\n\n");
  TablePrinter fill_table({"min fill", "CRR", "pages", "avg fill"});
  Network net = PaperNetwork();
  size_t total_bytes = 0;
  for (NodeId id : net.NodeIds()) {
    total_bytes += RecordSizeOf(id, net.node(id)) + 4;
  }
  for (double fill : {0.5, 0.4, 0.3, 0.2}) {
    ClusterOptions options;
    options.page_capacity = 1024 - SlottedPage::kHeaderSize;
    options.per_record_overhead = SlottedPage::kSlotOverhead;
    options.min_fill_fraction = fill;
    auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
    if (!pages.ok()) return 1;
    NodePageMap map;
    for (size_t p = 0; p < pages->size(); ++p) {
      for (NodeId id : (*pages)[p]) map[id] = static_cast<PageId>(p);
    }
    fill_table.AddRow({Fmt(fill, 2), Fmt(ComputeCrr(net, map), 4),
                       std::to_string(pages->size()),
                       Fmt(static_cast<double>(total_bytes) /
                               (pages->size() * options.page_capacity),
                           3)});
  }
  fill_table.Print();
  json.AddTable("min_fill", fill_table);
  std::printf(
      "\nExpected shape: CCAM-S best on every topology; the scale-free "
      "hubs depress everyone's CRR; relaxing min fill trades pages for "
      "CRR.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
