// Spatial workload sweep (Sequoia-2000-flavored, per the paper's future
// work: "we will evaluate CCAM for various aggregate computations over
// networks and benchmarks (such as the sequoia benchmark)").
//
// Window queries of increasing selectivity and k-nearest queries run over
// each access method's data file through the Z-order B+ tree / R-tree
// secondary indexes. The data-page I/O of fetching the result records
// exposes the flip side of the paper's Table 5 insert result: proximity
// clustering (Grid File) is the best layout for *spatial* queries, while
// connectivity clustering (CCAM) wins the *network* operations — on road
// maps the two are correlated enough that CCAM stays competitive.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/query/spatial.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  // Coordinate extent of the generated map (33 x 33 grid at spacing 100).
  const double extent = 3300.0;
  const std::vector<double> window_fracs = {0.05, 0.1, 0.2, 0.4};

  std::printf("Spatial queries: data-page I/O per query (block = 1 KiB, "
              "Z-order B+ tree index, 50 queries per cell)\n\n");
  std::vector<std::string> headers{"Method"};
  for (double f : window_fracs) {
    headers.push_back("win " + Fmt(100 * f, 0) + "%");
  }
  headers.push_back("kNN k=8");
  headers.push_back("scan/rslt");
  BenchJsonWriter json("spatial_queries");
  TablePrinter table(std::move(headers));

  for (Method m : {Method::kCcamS, Method::kDfs, Method::kGrid,
                   Method::kBfs}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    auto am = MakeMethod(m, options);
    if (!am->Create(net).ok()) return 1;
    auto engine = SpatialQueryEngine::Build(am.get());
    if (!engine.ok()) return 1;

    std::vector<std::string> row{MethodName(m)};
    double scanned = 0, results = 0;
    for (double frac : window_fracs) {
      Random rng(99);
      uint64_t io = 0;
      const int kQueries = 50;
      for (int q = 0; q < kQueries; ++q) {
        double w = extent * frac;
        double x0 = rng.NextDouble() * (extent - w);
        double y0 = rng.NextDouble() * (extent - w);
        (void)am->buffer_pool()->Reset();
        auto res = (*engine)->WindowQuery(x0, y0, x0 + w, y0 + w);
        if (!res.ok()) return 1;
        io += res->data_page_accesses;
        scanned += static_cast<double>(res->entries_scanned);
        results += static_cast<double>(res->records.size());
      }
      row.push_back(Fmt(static_cast<double>(io) / kQueries, 1));
    }
    {
      Random rng(7);
      uint64_t io = 0;
      const int kQueries = 50;
      for (int q = 0; q < kQueries; ++q) {
        (void)am->buffer_pool()->Reset();
        auto res = (*engine)->NearestNeighbors(rng.NextDouble() * extent,
                                               rng.NextDouble() * extent, 8);
        if (!res.ok()) return 1;
        io += res->data_page_accesses;
      }
      row.push_back(Fmt(static_cast<double>(io) / kQueries, 1));
    }
    row.push_back(Fmt(results > 0 ? scanned / results : 0.0, 2));
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("spatial_io", table);
  std::printf(
      "\nExpected shape: Grid File (proximity clustering) lowest on window "
      "queries; CCAM close behind (connectivity correlates with proximity "
      "on road maps); BFS-AM worst everywhere. scan/rslt ~ 1 shows the "
      "BIGMIN Z-scan inspects few dead index entries.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
