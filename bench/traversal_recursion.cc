// Traversal-recursion workloads — the related-work benchmark family (the
// topological-ordering baselines were designed for exactly these queries;
// the paper's reference [23] asks whether proximity-based methods can
// support them). Reachability (depth-bounded partial transitive closure)
// and weak-component discovery, with data-page I/O per access method.
//
// Expected shape: I/O tracks CRR — CCAM-S lowest, BFS-AM worst — mirroring
// Table 5's Get-successors() column, because traversal recursion is a
// stream of Get-successors() calls.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/query/traversal.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  Random rng(21);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  std::vector<NodeId> sources(ids.begin(), ids.begin() + 25);

  std::printf("Traversal recursion: data-page accesses (block = 1 KiB, 25 "
              "random sources)\n\n");
  BenchJsonWriter json("traversal_recursion");
  TablePrinter table({"Method", "reach d=4", "reach d=8", "reach d=16",
                      "components", "CRR"});
  for (Method m : AllMethods()) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    auto am = MakeMethod(m, options);
    if (!am->Create(net).ok()) return 1;
    std::vector<std::string> row{MethodName(m)};
    for (int depth : {4, 8, 16}) {
      (void)am->buffer_pool()->Reset();
      auto sample = SampleTransitiveClosure(am.get(), sources, depth);
      if (!sample.ok()) return 1;
      row.push_back(
          Fmt(static_cast<double>(sample->page_accesses) / sources.size(),
              1));
    }
    (void)am->buffer_pool()->Reset();
    auto comp = WeaklyConnectedComponents(am.get());
    if (!comp.ok()) return 1;
    row.push_back(std::to_string(comp->page_accesses));
    row.push_back(Fmt(ComputeCrr(net, am->PageMap()), 4));
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("traversal_io", table);
  std::printf("\nExpected shape: ordering by CRR, CCAM-S lowest at every "
              "depth; component discovery touches the whole file, so the "
              "gap narrows but persists.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
