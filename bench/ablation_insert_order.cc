// Ablation: the Add-node() stream order of CCAM-D's incremental create.
//
// The paper's incremental Create() processes nodes as they arrive; it
// never says in which order a bulk load should stream them. This ablation
// shows the order matters: spatially coherent streams (Z-order node-ids)
// and topologically coherent streams (BFS) give every Add-node() useful
// neighbor pages to join, while a random stream approaches the quality of
// random clustering until the per-insert reorganization digs it out.
// Also sweeps the create-time reorganization policy.

#include <cstdio>

#include "bench/bench_util.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  std::printf("Ablation: CCAM-D Add-node() stream order x create policy "
              "(block = 1 KiB). Cells: resulting CRR\n\n");

  BenchJsonWriter json("ablation_insert_order");
  TablePrinter table({"Stream order", "first-order", "second-order",
                      "higher-order"});
  for (CcamInsertOrder order :
       {CcamInsertOrder::kNodeId, CcamInsertOrder::kBfs,
        CcamInsertOrder::kRandom}) {
    std::vector<std::string> row{CcamInsertOrderName(order)};
    for (ReorgPolicy policy :
         {ReorgPolicy::kFirstOrder, ReorgPolicy::kSecondOrder,
          ReorgPolicy::kHigherOrder}) {
      AccessMethodOptions options;
      options.page_size = 1024;
      options.buffer_pool_pages = 8;
      Ccam am(options, CcamCreateMode::kIncremental, policy);
      am.SetIncrementalOrder(order);
      Status s = am.Create(net);
      if (!s.ok()) {
        row.push_back("n/a");
        continue;
      }
      row.push_back(Fmt(ComputeCrr(net, am.PageMap()), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("insert_order", table);
  std::printf(
      "\nExpected shape: Z-order and BFS streams within a few points of "
      "each other and of CCAM-S; the random stream clearly behind under "
      "first-order, rescued progressively by second/higher-order "
      "reclustering.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
