// Hierarchy speedup: page accesses per long route query, flat search vs
// the contraction-hierarchy overlay.
//
// The flat searches (Dijkstra, A*) touch a node record for every expansion,
// so a corner-to-corner query over a large road map sweeps most of the data
// file through an 8-page pool. The CH overlay replaces that sweep with two
// short climbs of the shortcut graph whose top levels live on a handful of
// hot pages — the bench measures exactly that, in the paper's currency of
// page accesses, on coordinate-extreme (longest) pairs with the pools
// dropped cold before every query.
//
// Sides default to {32, 64, 91} (the upper half of the scale bench's
// sweep); override with a comma-separated CCAM_HIER_SIDES. Every cell is
// also emitted into BENCH_hierarchy_speedup.json (bench_util schema);
// scripts/check_perf.sh compares the access counts exactly — they are
// deterministic — and the wall-clock/speedup columns within tolerance.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/query/hierarchy.h"
#include "src/query/search.h"

namespace ccam {
namespace bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<int> Sides() {
  std::vector<int> sides;
  if (const char* env = std::getenv("CCAM_HIER_SIDES")) {
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 1) sides.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (sides.empty()) sides = {32, 64, 91};
  return sides;
}

/// The longest queries the map offers: nodes sorted by x+y, the i-th
/// lowest corner paired with the i-th highest.
std::vector<std::pair<NodeId, NodeId>> ExtremePairs(const Network& net,
                                                    size_t count) {
  std::vector<NodeId> ids = net.NodeIds();
  std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    const NetworkNode& na = net.node(a);
    const NetworkNode& nb = net.node(b);
    return na.x + na.y < nb.x + nb.y;
  });
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (size_t i = 0; i < count && i < ids.size() / 2; ++i) {
    pairs.emplace_back(ids[i], ids[ids.size() - 1 - i]);
  }
  return pairs;
}

struct AlgoStats {
  uint64_t accesses = 0;
  double ms = 0.0;
  double cost_sum = 0.0;
};

int Run() {
  std::printf("Hierarchy speedup: page accesses per corner-to-corner "
              "query, cold 8-page pools (block = 1 KiB)\n\n");
  TablePrinter queries({"side", "nodes", "algorithm", "pairs",
                        "total accesses", "mean accesses", "mean ms"});
  TablePrinter summary({"side", "nodes", "A* accesses", "CH accesses",
                        "access speedup", "CH matches Dijkstra"});
  TablePrinter build({"side", "nodes", "shortcuts", "overlay pages",
                      "overlay page size", "create ms"});
  BenchJsonWriter json("hierarchy_speedup");

  const size_t kPairs = 8;
  for (int side : Sides()) {
    RoadMapOptions gen;
    gen.rows = side;
    gen.cols = side;
    gen.nodes_to_remove = side / 4;
    gen.seed = 1000 + side;
    Network net = GenerateRoadMap(gen);

    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    options.hierarchy_overlay = true;
    Ccam am(options, CcamCreateMode::kStatic);
    auto t0 = std::chrono::steady_clock::now();
    Status created = am.Create(net);
    double create_ms = MsSince(t0);
    if (!created.ok() || !am.HasHierarchy()) {
      std::fprintf(stderr, "side %d: create failed: %s\n", side,
                   created.message().c_str());
      return 1;
    }
    const HierarchyOverlay::BuildInfo& info = am.hierarchy()->build_info();
    build.AddRow({std::to_string(side), std::to_string(net.NumNodes()),
                  std::to_string(info.shortcuts), std::to_string(info.pages),
                  std::to_string(info.page_size), Fmt(create_ms, 1)});

    std::vector<std::pair<NodeId, NodeId>> pairs = ExtremePairs(net, kPairs);
    // Every query starts with both pools cold: access counts measure the
    // structure, not residue from the previous query.
    auto cold = [&] {
      am.buffer_pool()->Reset();
      am.hierarchy()->pool()->Reset();
      am.ResetIoStats();
      am.hierarchy()->ResetStats();
    };

    std::vector<double> oracle_costs;
    bool matches = true;
    auto run_algo = [&](const char* name) {
      AlgoStats stats;
      for (size_t i = 0; i < pairs.size(); ++i) {
        cold();
        auto q0 = std::chrono::steady_clock::now();
        Result<SearchResult> res =
            std::string(name) == "dijkstra"
                ? ShortestPathDijkstra(&am, pairs[i].first, pairs[i].second)
            : std::string(name) == "astar"
                ? ShortestPathAStar(&am, pairs[i].first, pairs[i].second)
                : ShortestPathCH(&am, pairs[i].first, pairs[i].second);
        stats.ms += MsSince(q0);
        if (!res.ok()) {
          std::fprintf(stderr, "side %d: %s %u->%u failed: %s\n", side, name,
                       pairs[i].first, pairs[i].second,
                       res.status().message().c_str());
          continue;
        }
        // A removed-node map can isolate a corner; the search still did
        // comparable work, and the oracle records the unreachability so CH
        // must reproduce it (cost -1 = unreachable).
        stats.accesses += res->page_accesses;
        stats.cost_sum += res->Found() ? res->cost : 0.0;
        if (std::string(name) == "dijkstra") {
          oracle_costs.push_back(res->Found() ? res->cost : -1.0);
        } else if (std::string(name) == "ch" && i < oracle_costs.size()) {
          double dj = oracle_costs[i];
          if (dj < 0.0) {
            if (res->Found()) matches = false;
          } else if (!res->Found() ||
                     std::abs(res->cost - dj) > 1e-6 * (1.0 + dj)) {
            matches = false;
          }
        }
      }
      queries.AddRow({std::to_string(side), std::to_string(net.NumNodes()),
                      name, std::to_string(pairs.size()),
                      std::to_string(stats.accesses),
                      Fmt(static_cast<double>(stats.accesses) /
                              static_cast<double>(pairs.size()),
                          1),
                      Fmt(stats.ms / static_cast<double>(pairs.size()), 3)});
      return stats;
    };

    AlgoStats dj = run_algo("dijkstra");
    AlgoStats astar = run_algo("astar");
    AlgoStats ch = run_algo("ch");
    (void)dj;
    double speedup = ch.accesses > 0 ? static_cast<double>(astar.accesses) /
                                           static_cast<double>(ch.accesses)
                                     : 0.0;
    summary.AddRow({std::to_string(side), std::to_string(net.NumNodes()),
                    std::to_string(astar.accesses),
                    std::to_string(ch.accesses), Fmt(speedup, 2),
                    matches ? "true" : "false"});
  }

  queries.Print();
  json.AddTable("query_accesses", queries);
  std::printf("\nOverlay build cost (included once in Create)\n\n");
  build.Print();
  json.AddTable("overlay_build", build);
  std::printf("\nSummary: A* vs CH page accesses on the same cold pools\n\n");
  summary.Print();
  json.AddTable("speedup", summary);
  std::printf(
      "\nExpected shape: flat-search accesses grow with the map (the "
      "frontier sweeps the data file); CH accesses stay near the overlay's "
      "top levels, so the access speedup widens with scale — 10x+ at the "
      "largest side. \"CH matches Dijkstra\" must read true: the overlay "
      "is an index, never an approximation.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
