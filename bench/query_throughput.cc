// Concurrent read-path throughput: route evaluation and A* over one
// shared CCAM file from multiple query threads.
//
// Each thread owns a QuerySession (per-stream IoStats) over the same
// NetworkFile and buffer pool; the pool is sharded and misses overlap,
// so queries scale with the thread count until the pool's misses
// saturate the (simulated) disk. The disk models a fixed per-read
// latency (CCAM_BENCH_DISK_LAT_US, default 100) — with instantaneous
// reads a single CPU-bound thread saturates immediately and the sweep
// measures nothing.
//
// Reported per (workload, pool size, threads): queries/sec, p50/p99
// query latency, and the summed per-session data-page accesses, which
// are asserted to equal the global disk-read delta (the paper's
// accounting convention survives concurrency exactly). Every cell is
// appended to BENCH_query_throughput.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/thread_pool.h"
#include "src/core/query_session.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"

namespace ccam {
namespace bench {
namespace {

constexpr int kRoutes = 256;
constexpr int kRouteLength = 24;
constexpr int kAStarQueries = 96;
const char* kImagePath = "bench_query_throughput.img";

// A shard must keep at least kMinFramesPerShard frames so it can absorb
// one pinned in-flight miss per query thread without running out of
// evictable frames (see docs/INTERNALS.md, sizing rule).
size_t ShardsFor(size_t pool_pages) {
  return std::max<size_t>(
      1, std::min<size_t>(8, pool_pages / BufferPool::kMinFramesPerShard));
}

uint32_t DiskLatencyMicros() {
  if (const char* env = std::getenv("CCAM_BENCH_DISK_LAT_US")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 0) return static_cast<uint32_t>(v);
  }
  return 100;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepPoint {
  int threads = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t page_accesses = 0;
  bool conserved = false;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

/// Runs `queries` query thunks on `threads` threads, one QuerySession per
/// thread, and gathers qps / latency percentiles / per-session accesses.
/// `run` is invoked as run(session, query_index) and returns true on
/// success.
template <typename Fn>
SweepPoint RunSweep(NetworkFile* file, int threads, int queries, Fn run) {
  std::vector<std::unique_ptr<QuerySession>> sessions;
  std::vector<std::vector<double>> latencies(threads);
  for (int t = 0; t < threads; ++t) sessions.push_back(file->OpenSession());

  uint64_t disk_reads_before = file->disk()->stats().reads;
  auto t0 = std::chrono::steady_clock::now();
  {
    ThreadPool pool(threads);
    for (int t = 0; t < threads; ++t) {
      QuerySession* session = sessions[t].get();
      std::vector<double>* lat = &latencies[t];
      pool.Submit([=] {
        // Round-robin assignment: thread t runs queries t, t+T, t+2T, ...
        for (int q = t; q < queries; q += threads) {
          auto q0 = std::chrono::steady_clock::now();
          if (!run(session, q)) std::abort();
          lat->push_back(SecondsSince(q0) * 1e6);
        }
      });
    }
    pool.WaitIdle();
  }
  double wall = SecondsSince(t0);
  uint64_t disk_reads = file->disk()->stats().reads - disk_reads_before;

  SweepPoint point;
  point.threads = threads;
  point.qps = static_cast<double>(queries) / wall;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  point.p50_us = Percentile(&all, 0.50);
  point.p99_us = Percentile(&all, 0.99);
  for (auto& s : sessions) point.page_accesses += s->DataIoStats().reads;
  // Per-session counters must sum exactly to the global disk reads: a
  // fetch is charged iff it missed the shared pool.
  point.conserved = point.page_accesses == disk_reads;
  return point;
}

int Run() {
  const uint32_t latency_us = DiskLatencyMicros();
  const std::vector<int> thread_counts = BenchThreadCounts();

  // ~8k-node road map (the scale bench's largest size).
  RoadMapOptions gen;
  gen.rows = 91;
  gen.cols = 91;
  gen.nodes_to_remove = 91 / 4;
  gen.seed = 1000 + 91;
  Network net = GenerateRoadMap(gen);
  std::printf("Query throughput: %zu nodes / %zu edges, CCAM-S, "
              "simulated disk read latency %u us\n\n",
              net.NumNodes(), net.NumEdges(), latency_us);

  std::vector<Route> routes =
      GenerateRandomWalkRoutes(net, kRoutes, kRouteLength, 7);

  // Create the file once, then reopen the saved image per pool size (the
  // pool capacity is fixed at construction).
  {
    AccessMethodOptions options;
    options.page_size = 1024;
    auto am = MakeMethod(Method::kCcamS, options);
    if (!am->Create(net).ok() || !am->SaveImage(kImagePath).ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }
  }
  auto open = [&](size_t pool_pages) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = pool_pages;
    options.buffer_pool_shards = ShardsFor(pool_pages);
    auto am = MakeMethod(Method::kCcamS, options);
    if (!am->OpenImage(kImagePath).ok()) return std::unique_ptr<NetworkFile>();
    am->disk()->SetSimulatedReadLatencyMicros(latency_us);
    return am;
  };

  BenchJsonWriter json("query_throughput");
  auto emit = [&](const char* workload, size_t pool_pages,
                  const SweepPoint& p, int queries) {
    json.AddRecord(
        workload,
        {{"pool_pages", std::to_string(pool_pages)},
         {"shards", std::to_string(ShardsFor(pool_pages))},
         {"threads", std::to_string(p.threads)},
         {"disk_read_latency_us", std::to_string(latency_us)},
         {"queries", std::to_string(queries)},
         {"qps", Fmt(p.qps, 1)},
         {"p50_us", Fmt(p.p50_us, 1)},
         {"p99_us", Fmt(p.p99_us, 1)},
         {"page_accesses", std::to_string(p.page_accesses)},
         {"conserved", p.conserved ? "true" : "false"}});
  };

  // --- Route evaluation vs threads and pool size -------------------------
  TablePrinter table({"pool", "threads", "qps", "p50 us", "p99 us",
                      "accesses", "conserved", "speedup"});
  bool all_conserved = true;
  double speedup_at_64 = 0.0;
  int max_threads = *std::max_element(thread_counts.begin(),
                                      thread_counts.end());
  for (size_t pool_pages : {16, 64, 256}) {
    auto am = open(pool_pages);
    if (!am) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }
    // Warm pass (untimed): fills the pool so every sweep starts warm.
    {
      auto warm = am->OpenSession();
      for (const Route& r : routes) {
        if (!EvaluateRoute(warm.get(), r).ok()) return 1;
      }
    }
    double qps1 = 0.0;
    for (int threads : thread_counts) {
      SweepPoint p = RunSweep(
          am.get(), threads, kRoutes, [&](QuerySession* s, int q) {
            return EvaluateRoute(s, routes[q]).ok();
          });
      if (threads == 1) qps1 = p.qps;
      double speedup = qps1 > 0 ? p.qps / qps1 : 0.0;
      if (pool_pages == 64 && threads == max_threads) speedup_at_64 = speedup;
      all_conserved &= p.conserved;
      table.AddRow({std::to_string(pool_pages), std::to_string(threads),
                    Fmt(p.qps, 0), Fmt(p.p50_us, 0), Fmt(p.p99_us, 0),
                    std::to_string(p.page_accesses),
                    p.conserved ? "yes" : "NO", Fmt(speedup, 2) + "x"});
      emit("route_eval", pool_pages, p, kRoutes);
    }
  }
  std::printf("Route evaluation (%d random-walk routes of %d nodes):\n",
              kRoutes, kRouteLength);
  table.Print();
  std::printf("\nroute-eval speedup at %d threads vs 1 (64-page pool): "
              "%.2fx\n\n",
              max_threads, speedup_at_64);

  // --- A* search vs threads (64-page pool) -------------------------------
  // Origin/destination pairs = endpoints of the walk routes: bounded
  // searches with realistic locality.
  TablePrinter astar({"threads", "qps", "p50 us", "p99 us", "accesses",
                      "conserved"});
  {
    auto am = open(64);
    if (!am) return 1;
    {
      auto warm = am->OpenSession();
      for (int q = 0; q < kAStarQueries; ++q) {
        const Route& r = routes[q % routes.size()];
        if (!ShortestPathAStar(warm.get(), r.nodes.front(), r.nodes.back())
                 .ok()) {
          return 1;
        }
      }
    }
    for (int threads : thread_counts) {
      SweepPoint p = RunSweep(
          am.get(), threads, kAStarQueries, [&](QuerySession* s, int q) {
            const Route& r = routes[q % routes.size()];
            return ShortestPathAStar(s, r.nodes.front(), r.nodes.back()).ok();
          });
      all_conserved &= p.conserved;
      astar.AddRow({std::to_string(threads), Fmt(p.qps, 0), Fmt(p.p50_us, 0),
                    Fmt(p.p99_us, 0), std::to_string(p.page_accesses),
                    p.conserved ? "yes" : "NO"});
      emit("astar", 64, p, kAStarQueries);
    }
  }
  std::printf("A* shortest path (%d OD pairs, 64-page pool):\n",
              kAStarQueries);
  astar.Print();
  std::remove(kImagePath);
  if (!all_conserved) {
    std::fprintf(stderr,
                 "FAIL: per-session accesses did not sum to disk reads\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
