// Wall-clock microbenchmarks (google-benchmark) for the core operations.
//
// The paper's metric is page accesses, not time; these benchmarks cover
// the CPU side the paper leaves to future work ("the CPU cost for
// reorganization should be taken into account"): operation latency per
// access method, clustering cost per partitioner, and reorganization cost
// per policy.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/partition/recursive_bisection.h"
#include "src/query/route_eval.h"
#include "src/storage/page.h"

namespace ccam {
namespace bench {
namespace {

std::unique_ptr<NetworkFile> BuildAm(Method m, size_t page_size = 1024) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = 8;
  auto am = MakeMethod(m, options);
  Network net = PaperNetwork();
  Status s = am->Create(net);
  if (!s.ok()) std::abort();
  return am;
}

void BM_Find(benchmark::State& state) {
  auto am = BuildAm(static_cast<Method>(state.range(0)));
  Random rng(1);
  Network net = PaperNetwork();
  auto ids = net.NodeIds();
  for (auto _ : state) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto rec = am->Find(id);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_Find)
    ->Arg(static_cast<int>(Method::kCcamS))
    ->Arg(static_cast<int>(Method::kDfs))
    ->Arg(static_cast<int>(Method::kBfs))
    ->Arg(static_cast<int>(Method::kGrid));

void BM_GetSuccessors(benchmark::State& state) {
  auto am = BuildAm(static_cast<Method>(state.range(0)));
  Random rng(2);
  Network net = PaperNetwork();
  auto ids = net.NodeIds();
  for (auto _ : state) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto succ = am->GetSuccessors(id);
    benchmark::DoNotOptimize(succ);
  }
}
BENCHMARK(BM_GetSuccessors)
    ->Arg(static_cast<int>(Method::kCcamS))
    ->Arg(static_cast<int>(Method::kBfs));

void BM_RouteEvaluation(benchmark::State& state) {
  auto am = BuildAm(static_cast<Method>(state.range(0)));
  Network net = PaperNetwork();
  auto routes = GenerateRandomWalkRoutes(net, 64, 30, 5);
  size_t i = 0;
  for (auto _ : state) {
    auto res = EvaluateRoute(am.get(), routes[i++ % routes.size()]);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_RouteEvaluation)
    ->Arg(static_cast<int>(Method::kCcamS))
    ->Arg(static_cast<int>(Method::kBfs));

void BM_InsertDeleteCycle(benchmark::State& state) {
  auto am = BuildAm(Method::kCcamS);
  Network net = PaperNetwork();
  auto ids = net.NodeIds();
  Random rng(3);
  ReorgPolicy policy = static_cast<ReorgPolicy>(state.range(0));
  for (auto _ : state) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto rec = am->Find(id);
    if (!rec.ok()) continue;
    Status s1 = am->DeleteNode(id, policy);
    Status s2 = am->InsertNode(*rec, policy);
    benchmark::DoNotOptimize(s1);
    benchmark::DoNotOptimize(s2);
  }
}
BENCHMARK(BM_InsertDeleteCycle)
    ->Arg(static_cast<int>(ReorgPolicy::kFirstOrder))
    ->Arg(static_cast<int>(ReorgPolicy::kSecondOrder))
    ->Arg(static_cast<int>(ReorgPolicy::kHigherOrder));

void BM_ClusterNodesIntoPages(benchmark::State& state) {
  Network net = PaperNetwork();
  ClusterOptions options;
  options.page_capacity = 1024 - SlottedPage::kHeaderSize;
  options.per_record_overhead = SlottedPage::kSlotOverhead;
  options.algorithm = static_cast<PartitionAlgorithm>(state.range(0));
  for (auto _ : state) {
    auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
    benchmark::DoNotOptimize(pages);
  }
}
BENCHMARK(BM_ClusterNodesIntoPages)
    ->Arg(static_cast<int>(PartitionAlgorithm::kRatioCut))
    ->Arg(static_cast<int>(PartitionAlgorithm::kFm))
    ->Arg(static_cast<int>(PartitionAlgorithm::kKl))
    ->Arg(static_cast<int>(PartitionAlgorithm::kRandom))
    ->Unit(benchmark::kMillisecond);

void BM_StaticCreate(benchmark::State& state) {
  Network net = PaperNetwork();
  for (auto _ : state) {
    AccessMethodOptions options;
    options.page_size = static_cast<size_t>(state.range(0));
    Ccam am(options, CcamCreateMode::kStatic);
    Status s = am.Create(net);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_StaticCreate)->Arg(512)->Arg(1024)->Arg(4096)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ccam

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to the repository
// root's BENCH_micro_ops.json (google-benchmark's own JSON schema) so this
// target emits a machine-readable artifact alongside the TablePrinter
// benches. Explicit --benchmark_out flags win.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=" + ccam::bench::BenchJsonDir() +
                         "/BENCH_micro_ops.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
