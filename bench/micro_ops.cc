// Wall-clock microbenchmarks (google-benchmark) for the core operations.
//
// The paper's metric is page accesses, not time; these benchmarks cover
// the CPU side the paper leaves to future work ("the CPU cost for
// reorganization should be taken into account"): operation latency per
// access method, clustering cost per partitioner, and reorganization cost
// per policy.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/partition/recursive_bisection.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/storage/page.h"

namespace ccam {
namespace bench {
namespace {

std::unique_ptr<NetworkFile> BuildAm(Method m, size_t page_size = 1024) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = 8;
  auto am = MakeMethod(m, options);
  Network net = PaperNetwork();
  Status s = am->Create(net);
  if (!s.ok()) std::abort();
  return am;
}

void BM_Find(benchmark::State& state) {
  auto am = BuildAm(static_cast<Method>(state.range(0)));
  Random rng(1);
  Network net = PaperNetwork();
  auto ids = net.NodeIds();
  for (auto _ : state) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto rec = am->Find(id);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_Find)
    ->Arg(static_cast<int>(Method::kCcamS))
    ->Arg(static_cast<int>(Method::kDfs))
    ->Arg(static_cast<int>(Method::kBfs))
    ->Arg(static_cast<int>(Method::kGrid));

void BM_GetSuccessors(benchmark::State& state) {
  auto am = BuildAm(static_cast<Method>(state.range(0)));
  Random rng(2);
  Network net = PaperNetwork();
  auto ids = net.NodeIds();
  for (auto _ : state) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto succ = am->GetSuccessors(id);
    benchmark::DoNotOptimize(succ);
  }
}
BENCHMARK(BM_GetSuccessors)
    ->Arg(static_cast<int>(Method::kCcamS))
    ->Arg(static_cast<int>(Method::kBfs));

void BM_RouteEvaluation(benchmark::State& state) {
  auto am = BuildAm(static_cast<Method>(state.range(0)));
  Network net = PaperNetwork();
  auto routes = GenerateRandomWalkRoutes(net, 64, 30, 5);
  size_t i = 0;
  for (auto _ : state) {
    auto res = EvaluateRoute(am.get(), routes[i++ % routes.size()]);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_RouteEvaluation)
    ->Arg(static_cast<int>(Method::kCcamS))
    ->Arg(static_cast<int>(Method::kBfs));

void BM_InsertDeleteCycle(benchmark::State& state) {
  auto am = BuildAm(Method::kCcamS);
  Network net = PaperNetwork();
  auto ids = net.NodeIds();
  Random rng(3);
  ReorgPolicy policy = static_cast<ReorgPolicy>(state.range(0));
  for (auto _ : state) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto rec = am->Find(id);
    if (!rec.ok()) continue;
    Status s1 = am->DeleteNode(id, policy);
    Status s2 = am->InsertNode(*rec, policy);
    benchmark::DoNotOptimize(s1);
    benchmark::DoNotOptimize(s2);
  }
}
BENCHMARK(BM_InsertDeleteCycle)
    ->Arg(static_cast<int>(ReorgPolicy::kFirstOrder))
    ->Arg(static_cast<int>(ReorgPolicy::kSecondOrder))
    ->Arg(static_cast<int>(ReorgPolicy::kHigherOrder));

void BM_ClusterNodesIntoPages(benchmark::State& state) {
  Network net = PaperNetwork();
  ClusterOptions options;
  options.page_capacity = 1024 - SlottedPage::kHeaderSize;
  options.per_record_overhead = SlottedPage::kSlotOverhead;
  options.algorithm = static_cast<PartitionAlgorithm>(state.range(0));
  for (auto _ : state) {
    auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
    benchmark::DoNotOptimize(pages);
  }
}
BENCHMARK(BM_ClusterNodesIntoPages)
    ->Arg(static_cast<int>(PartitionAlgorithm::kRatioCut))
    ->Arg(static_cast<int>(PartitionAlgorithm::kFm))
    ->Arg(static_cast<int>(PartitionAlgorithm::kKl))
    ->Arg(static_cast<int>(PartitionAlgorithm::kRandom))
    ->Unit(benchmark::kMillisecond);

void BM_StaticCreate(benchmark::State& state) {
  Network net = PaperNetwork();
  for (auto _ : state) {
    AccessMethodOptions options;
    options.page_size = static_cast<size_t>(state.range(0));
    Ccam am(options, CcamCreateMode::kStatic);
    Status s = am.Create(net);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_StaticCreate)->Arg(512)->Arg(1024)->Arg(4096)->Unit(
    benchmark::kMillisecond);

// --- Search-core rewrite: lazy-deletion PQ vs 4-ary heap ------------------

/// The pre-rewrite Dijkstra core, kept verbatim as the benchmark baseline:
/// a lazy-deletion std::priority_queue plus three per-node unordered_maps
/// (dist, parent, closed). The production core in src/query/search.cc
/// replaced it with one open-addressing table over dense slots and a
/// 4-ary heap with decrease-key; BM_DijkstraCore shows the delta on the
/// identical access-method I/O sequence.
Result<SearchResult> LegacyDijkstra(AccessMethod* am, NodeId src,
                                    NodeId dst) {
  SearchResult result;
  IoStats before = am->DataIoStats();
  NodeRecord dst_rec;
  CCAM_ASSIGN_OR_RETURN(dst_rec, am->Find(dst));
  NodeRecord src_rec;
  CCAM_ASSIGN_OR_RETURN(src_rec, am->Find(src));

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> open;
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> parent;
  std::unordered_map<NodeId, bool> closed;
  dist[src] = 0.0;
  open.push({0.0, src});
  while (!open.empty()) {
    auto [g, node] = open.top();
    open.pop();
    if (closed[node]) continue;  // stale duplicate entry
    closed[node] = true;
    ++result.nodes_expanded;
    if (node == dst) {
      result.cost = g;
      for (NodeId at = dst;; at = parent.at(at)) {
        result.path.push_back(at);
        if (at == src) break;
      }
      std::reverse(result.path.begin(), result.path.end());
      break;
    }
    std::vector<NodeRecord> successors;
    CCAM_ASSIGN_OR_RETURN(successors, am->GetSuccessors(node));
    NodeRecord expanded;
    CCAM_ASSIGN_OR_RETURN(expanded, am->Find(node));
    for (const NodeRecord& succ : successors) {
      if (closed[succ.id]) continue;
      auto cost = expanded.SuccessorCost(succ.id);
      if (!cost.ok()) continue;
      double ng = g + *cost;
      auto it = dist.find(succ.id);
      if (it == dist.end() || ng < it->second) {
        dist[succ.id] = ng;
        parent[succ.id] = node;
        open.push({ng, succ.id});
      }
    }
  }
  result.page_accesses = (am->DataIoStats() - before).Accesses();
  return result;
}

void BM_DijkstraCore(benchmark::State& state) {
  AccessMethodOptions options;
  options.page_size = 1024;
  // A pool big enough to hold the file keeps the loop CPU-bound: the
  // benchmark measures the search core, not the pager.
  options.buffer_pool_pages = 256;
  Ccam am(options, CcamCreateMode::kStatic);
  Network net = PaperNetwork();
  if (!am.Create(net).ok()) std::abort();
  auto ids = net.NodeIds();
  Random rng(4);
  const bool legacy = state.range(0) == 0;
  for (auto _ : state) {
    NodeId src = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    NodeId dst = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto res = legacy ? LegacyDijkstra(&am, src, dst)
                      : ShortestPathDijkstra(&am, src, dst);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_DijkstraCore)
    ->Arg(0)  // legacy: priority_queue + 3 unordered_maps
    ->Arg(1)  // current: 4-ary heap + open addressing
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ccam

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to the repository
// root's BENCH_micro_ops.json (google-benchmark's own JSON schema) so this
// target emits a machine-readable artifact alongside the TablePrinter
// benches. Explicit --benchmark_out flags win.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=" + ccam::bench::BenchJsonDir() +
                         "/BENCH_micro_ops.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
