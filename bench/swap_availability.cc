// Reader availability during online reorganization: the headline number
// of the snapshot-swap design. One reader session runs point queries
// (Find + GetSuccessors over random live nodes, Refresh every 256 ops)
// in two phases:
//
//   * quiesced — no reorganization anywhere; baseline p50/p99/qps;
//   * reorg    — a writer thread runs back-to-back full
//     reorganizations (mutate, rebuild, swap) for the whole window.
//
// With in-place reclustering the reorg phase would stall readers for
// the full rebuild; with the versioned swap the reader never blocks —
// the p99 ratio is the measured availability cost. Both phases append
// to BENCH_swap_availability.json (scripts/check_perf.sh diffs it:
// *_us / qps fields within tolerance, config ints exactly).
//
// The binary self-gates (nonzero exit) on a reader error or an empty
// phase — never on the timing ratio itself, which is meaningless in
// debug builds.
//
// Env knobs: CCAM_SWAP_BENCH_OPS (quiesced ops, default 20000),
// CCAM_SWAP_BENCH_SWAPS (reorg-phase swaps, default 12).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/graph/generator.h"
#include "src/storage/snapshot_manager.h"

namespace ccam {
namespace bench {
namespace {

constexpr int kNodes = 1200;
constexpr size_t kPoolPages = 16;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) return static_cast<uint64_t>(v);
  }
  return fallback;
}

struct PhaseResult {
  uint64_t ops = 0;
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
  bool failed = false;
};

double Percentile(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(lat->size() - 1));
  std::nth_element(lat->begin(), lat->begin() + idx, lat->end());
  return (*lat)[idx];
}

/// Runs point queries until `stop` flips (and at least `min_ops` either
/// way). Opens its own session: one session per thread.
PhaseResult RunReader(SnapshotManager* store, std::atomic<bool>* stop,
                      uint64_t min_ops, uint64_t seed) {
  PhaseResult r;
  std::unique_ptr<SnapshotSession> session = store->OpenSession();
  std::vector<NodeId> ids = session->LiveNodeIds();
  Random rng(seed);
  std::vector<double> lat;
  lat.reserve(min_ops);
  auto phase_start = std::chrono::steady_clock::now();
  while (r.ops < min_ops ||
         (stop != nullptr && !stop->load(std::memory_order_acquire))) {
    NodeId id = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto t0 = std::chrono::steady_clock::now();
    auto rec = session->Find(id);
    auto succ = rec.ok() ? session->GetSuccessors(id)
                         : Result<std::vector<NodeRecord>>(rec.status());
    auto t1 = std::chrono::steady_clock::now();
    if (!rec.ok() || !succ.ok()) {
      std::fprintf(stderr, "reader: live node %llu unreadable: %s\n",
                   static_cast<unsigned long long>(id),
                   (rec.ok() ? succ.status() : rec.status()).ToString().c_str());
      r.failed = true;
      return r;
    }
    lat.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    ++r.ops;
    if (r.ops % 256 == 0) {
      session->Refresh();
      ids = session->LiveNodeIds();
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - phase_start)
                    .count();
  r.p50_us = Percentile(&lat, 0.50);
  r.p99_us = Percentile(&lat, 0.99);
  r.qps = secs > 0 ? static_cast<double>(r.ops) / secs : 0;
  return r;
}

int Run() {
  const uint64_t kOps = EnvU64("CCAM_SWAP_BENCH_OPS", 20000);
  const uint64_t kSwaps = EnvU64("CCAM_SWAP_BENCH_SWAPS", 12);

  SnapshotOptions sopt;
  sopt.am.page_size = 1024;
  sopt.am.buffer_pool_pages = kPoolPages;
  const char* tmp = std::getenv("TMPDIR");
  sopt.dir = std::string(tmp != nullptr ? tmp : "/tmp") +
             "/ccam_bench_swap_store";
  std::error_code ec;
  std::filesystem::remove_all(sopt.dir, ec);

  Network net = GenerateRandomGeometricNetwork(kNodes, 45.0, 1000.0, 1995);
  auto mgr = SnapshotManager::Create(sopt, net);
  if (!mgr.ok()) {
    std::fprintf(stderr, "create: %s\n", mgr.status().ToString().c_str());
    return 1;
  }
  SnapshotManager* store = mgr->get();

  // --- Phase 1: quiesced baseline.
  PhaseResult quiesced = RunReader(store, nullptr, kOps, 7);
  if (quiesced.failed || quiesced.ops == 0) return 1;

  // --- Phase 2: same workload while a writer swaps back to back.
  std::atomic<bool> stop{false};
  PhaseResult reorg;
  std::thread reader([&] { reorg = RunReader(store, &stop, kOps / 4, 11); });
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);
  std::vector<NodeId> anchors = net.NodeIds();
  bool writer_failed = false;
  for (uint64_t s = 0; s < kSwaps; ++s) {
    NodeRecord rec;
    rec.id = next_id++;
    rec.x = static_cast<double>(s);
    rec.y = -1.0;
    rec.succ.push_back({anchors[s % anchors.size()], 1.0f});
    if (!store->InsertNode(rec).ok() || !store->ReorganizeNow().ok()) {
      writer_failed = true;
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  if (writer_failed || reorg.failed || reorg.ops == 0) return 1;
  if (store->ReorgCount() != kSwaps) return 1;

  TablePrinter table({"mode", "swaps", "p50 us", "p99 us", "qps"});
  table.AddRow({"quiesced", "0", Fmt(quiesced.p50_us, 2),
                Fmt(quiesced.p99_us, 2), Fmt(quiesced.qps, 0)});
  table.AddRow({"reorg", std::to_string(kSwaps), Fmt(reorg.p50_us, 2),
                Fmt(reorg.p99_us, 2), Fmt(reorg.qps, 0)});
  table.Print();
  double ratio = quiesced.p99_us > 0 ? reorg.p99_us / quiesced.p99_us : 0;
  std::printf("\nreader p99 during reorg = %.2fx quiesced "
              "(%llu swaps completed under load)\n",
              ratio, static_cast<unsigned long long>(kSwaps));

  BenchJsonWriter json("swap_availability");
  json.AddTable("availability", table);
  json.AddRecord("config",
                 {{"nodes", std::to_string(kNodes)},
                  {"pool pages", std::to_string(kPoolPages)},
                  {"swaps", std::to_string(kSwaps)},
                  // "rate" keys the field as wall-clock-noisy for
                  // scripts/check_perf.sh; config ints stay exact.
                  {"p99 inflation rate", Fmt(ratio, 3)}});
  return json.Write() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
