// Ablation: data buffer pool size vs route-evaluation I/O.
//
// The paper's route-evaluation model assumes a single one-page buffer
// (Section 3.2); this ablation shows how the CCAM advantage persists (and
// every method improves) as the buffer pool grows — until the whole file
// fits and I/O collapses to compulsory misses.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"

namespace ccam {
namespace bench {
namespace {

int Run() {
  Network net = PaperNetwork();
  auto routes = GenerateRandomWalkRoutes(net, 100, 30, 99);
  std::printf("Ablation: route-evaluation I/O (100 routes, L = 30, block = "
              "1 KiB) vs buffer-pool pages\n\n");

  const std::vector<size_t> pool_sizes = {1, 2, 4, 8, 16, 32, 64};
  std::vector<std::string> headers{"Method"};
  for (size_t p : pool_sizes) headers.push_back("B=" + std::to_string(p));
  BenchJsonWriter json("ablation_buffer");
  TablePrinter table(std::move(headers));

  for (Method m : {Method::kCcamS, Method::kDfs, Method::kGrid,
                   Method::kBfs}) {
    std::vector<std::string> row{MethodName(m)};
    for (size_t pool : pool_sizes) {
      AccessMethodOptions options;
      options.page_size = 1024;
      options.buffer_pool_pages = pool;
      auto am = MakeMethod(m, options);
      if (!am->Create(net).ok()) return 1;
      uint64_t total = 0;
      for (const Route& r : routes) {
        // The pool persists across routes: larger pools amortize.
        auto res = EvaluateRoute(am.get(), r);
        if (res.ok()) total += res->page_accesses;
      }
      row.push_back(Fmt(static_cast<double>(total) / routes.size(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  json.AddTable("pool_size", table);
  std::printf(
      "\nExpected shape: monotone decrease with pool size for every "
      "method; CCAM-S lowest at small pools where clustering matters "
      "most.\n");

  // --- Replacement policy sweep (CCAM-S file, pool of 8). ----------------
  std::printf("\nReplacement policy (CCAM-S, B = 8): mean route-eval I/O "
              "and buffer hit rate\n\n");
  TablePrinter policy_table({"Policy", "io/route", "hit rate"});
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kClock,
        ReplacementPolicy::kFifo}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    options.replacement = policy;
    Ccam am(options, CcamCreateMode::kStatic);
    if (!am.Create(net).ok()) return 1;
    am.buffer_pool()->ResetCounters();
    uint64_t total = 0;
    for (const Route& r : routes) {
      auto res = EvaluateRoute(&am, r);
      if (res.ok()) total += res->page_accesses;
    }
    double hits = static_cast<double>(am.buffer_pool()->hits());
    double misses = static_cast<double>(am.buffer_pool()->misses());
    policy_table.AddRow({ReplacementPolicyName(policy),
                         Fmt(static_cast<double>(total) / routes.size(), 2),
                         Fmt(hits / (hits + misses), 3)});
  }
  policy_table.Print();
  json.AddTable("replacement_policy", policy_table);
  std::printf(
      "\nExpected shape: LRU ~= CLOCK (its approximation) with FIFO "
      "slightly behind — route locality re-references recent pages.\n");

  // --- Eviction cost vs pool capacity. -----------------------------------
  // A sequential sweep wider than the pool makes every fetch an eviction
  // under LRU (and CLOCK degrades likewise): the worst case for victim
  // selection. With the intrusive-list replacement the cost per miss is
  // O(1), so the column must stay flat as the capacity grows — the former
  // linear scan of the resident list grew it proportionally.
  std::printf("\nEviction cost (single shard, sequential sweep over 2x "
              "capacity pages, 100%% miss): ns per fetch\n\n");
  TablePrinter evict_table({"capacity", "lru ns/fetch", "clock ns/fetch"});
  for (size_t capacity : {16, 64, 256, 1024, 4096}) {
    std::vector<std::string> row{std::to_string(capacity)};
    for (ReplacementPolicy policy :
         {ReplacementPolicy::kLru, ReplacementPolicy::kClock}) {
      DiskManager disk(512);
      std::vector<PageId> ids;
      for (size_t i = 0; i < 2 * capacity; ++i) {
        ids.push_back(*disk.AllocatePage());
      }
      BufferPool pool(&disk, capacity, policy, /*num_shards=*/1);
      uint64_t fetches = 0;
      auto t0 = std::chrono::steady_clock::now();
      for (int pass = 0; pass < 4; ++pass) {
        for (PageId id : ids) {
          auto res = pool.FetchPage(id);
          if (!res.ok()) return 1;
          (void)pool.UnpinPage(id, false);
          ++fetches;
        }
      }
      double ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      row.push_back(Fmt(ns / static_cast<double>(fetches), 0));
    }
    evict_table.AddRow(std::move(row));
  }
  evict_table.Print();
  json.AddTable("eviction_cost", evict_table);
  std::printf("\nExpected shape: flat in capacity (O(1) victim "
              "selection).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
