#ifndef CCAM_BENCH_BENCH_UTIL_H_
#define CCAM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace bench {

/// The access methods compared throughout the paper's Section 4.
enum class Method {
  kCcamS,
  kCcamD,
  kDfs,
  kWdfs,
  kGrid,
  kBfs,
};

inline const char* MethodName(Method m) {
  switch (m) {
    case Method::kCcamS:
      return "CCAM-S";
    case Method::kCcamD:
      return "CCAM-D";
    case Method::kDfs:
      return "DFS-AM";
    case Method::kWdfs:
      return "WDFS-AM";
    case Method::kGrid:
      return "Grid File";
    case Method::kBfs:
      return "BFS-AM";
  }
  return "?";
}

inline std::vector<Method> AllMethods() {
  return {Method::kCcamS, Method::kCcamD, Method::kDfs,
          Method::kWdfs,  Method::kGrid,  Method::kBfs};
}

inline std::unique_ptr<NetworkFile> MakeMethod(
    Method m, const AccessMethodOptions& options) {
  switch (m) {
    case Method::kCcamS:
      return std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    case Method::kCcamD:
      return std::make_unique<Ccam>(options, CcamCreateMode::kIncremental);
    case Method::kDfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kDfs);
    case Method::kWdfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kWeightedDfs);
    case Method::kGrid:
      return std::make_unique<GridAm>(options);
    case Method::kBfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kBfs);
  }
  return nullptr;
}

/// The paper's evaluation network (see DESIGN.md for the substitution).
inline Network PaperNetwork() { return GenerateMinneapolisLikeMap(1995); }

/// Markdown-style table printer for the experiment binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Thread counts for clustering sweeps. Defaults to {1, 2, 4, 8};
/// override with a comma-separated CCAM_BENCH_THREADS (e.g. "1,16").
/// Page assignments are bit-identical at every count, so the sweep only
/// varies wall-clock, never CRR.
inline std::vector<int> BenchThreadCounts() {
  std::vector<int> counts;
  if (const char* env = std::getenv("CCAM_BENCH_THREADS")) {
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) counts.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

inline std::string Fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace bench
}  // namespace ccam

#endif  // CCAM_BENCH_BENCH_UTIL_H_
