#ifndef CCAM_BENCH_BENCH_UTIL_H_
#define CCAM_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace bench {

/// The access methods compared throughout the paper's Section 4.
enum class Method {
  kCcamS,
  kCcamD,
  kDfs,
  kWdfs,
  kGrid,
  kBfs,
};

inline const char* MethodName(Method m) {
  switch (m) {
    case Method::kCcamS:
      return "CCAM-S";
    case Method::kCcamD:
      return "CCAM-D";
    case Method::kDfs:
      return "DFS-AM";
    case Method::kWdfs:
      return "WDFS-AM";
    case Method::kGrid:
      return "Grid File";
    case Method::kBfs:
      return "BFS-AM";
  }
  return "?";
}

inline std::vector<Method> AllMethods() {
  return {Method::kCcamS, Method::kCcamD, Method::kDfs,
          Method::kWdfs,  Method::kGrid,  Method::kBfs};
}

inline std::unique_ptr<NetworkFile> MakeMethod(
    Method m, const AccessMethodOptions& options) {
  switch (m) {
    case Method::kCcamS:
      return std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    case Method::kCcamD:
      return std::make_unique<Ccam>(options, CcamCreateMode::kIncremental);
    case Method::kDfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kDfs);
    case Method::kWdfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kWeightedDfs);
    case Method::kGrid:
      return std::make_unique<GridAm>(options);
    case Method::kBfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kBfs);
  }
  return nullptr;
}

/// The paper's evaluation network (see DESIGN.md for the substitution).
inline Network PaperNetwork() { return GenerateMinneapolisLikeMap(1995); }

/// Markdown-style table printer for the experiment binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Thread counts for clustering sweeps. Defaults to {1, 2, 4, 8};
/// override with a comma-separated CCAM_BENCH_THREADS (e.g. "1,16").
/// Page assignments are bit-identical at every count, so the sweep only
/// varies wall-clock, never CRR.
inline std::vector<int> BenchThreadCounts() {
  std::vector<int> counts;
  if (const char* env = std::getenv("CCAM_BENCH_THREADS")) {
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v > 0) counts.push_back(static_cast<int>(v));
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

inline std::string Fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// Directory every bench writes its BENCH_<name>.json into: the
/// CCAM_BENCH_JSON_DIR override when set, else the repository root (the
/// nearest ancestor of the working directory holding ROADMAP.md or .git),
/// else the working directory — so the artifacts land in one predictable
/// place no matter where the binary was launched from.
inline std::string BenchJsonDir() {
  if (const char* env = std::getenv("CCAM_BENCH_JSON_DIR")) {
    if (env[0] != '\0') return env;
  }
  std::string dir = ".";
  for (int depth = 0; depth < 16; ++depth) {
    for (const char* marker : {"/ROADMAP.md", "/.git"}) {
      std::FILE* f = std::fopen((dir + marker).c_str(), "r");
      if (f != nullptr) {
        std::fclose(f);
        return dir;
      }
    }
    dir += "/..";
  }
  return ".";
}

/// Uniform machine-readable export for the experiment binaries: every
/// bench emits one BENCH_<name>.json at the repository root with the
/// schema
///
///   {"bench": "<name>", "schema_version": 1,
///    "records": [{"table": "<tag>", "<column>": <value>, ...}, ...]}
///
/// Records come from the same TablePrinter tables the bench prints, so the
/// human-readable and machine-readable outputs can never drift apart.
/// Column headers are sanitized into keys (lowercased, non-alphanumerics
/// collapsed to "_": "p50 us" -> "p50_us"); cells that parse fully as
/// numbers are emitted as JSON numbers, "true"/"false" as booleans,
/// everything else as strings. scripts/check_perf.sh diffs two of these
/// files record by record.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  ~BenchJsonWriter() {
    if (!written_) Write();
  }

  static std::string SanitizeKey(const std::string& header) {
    std::string key;
    for (char c : header) {
      if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
        key += c;
      } else if (c >= 'A' && c <= 'Z') {
        key += static_cast<char>(c - 'A' + 'a');
      } else if (!key.empty() && key.back() != '_') {
        key += '_';
      }
    }
    while (!key.empty() && key.back() == '_') key.pop_back();
    return key.empty() ? "col" : key;
  }

  /// One record per table row, keyed by the sanitized column headers and
  /// tagged with `tag` so multiple tables of one bench stay separable.
  void AddTable(const std::string& tag, const TablePrinter& table) {
    std::vector<std::string> keys;
    keys.reserve(table.headers().size());
    for (const auto& h : table.headers()) keys.push_back(SanitizeKey(h));
    for (const auto& row : table.rows()) {
      std::string rec = "{\"table\": " + Quote(tag);
      for (size_t c = 0; c < keys.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        rec += ", \"" + keys[c] + "\": " + EncodeValue(cell);
      }
      rec += "}";
      records_.push_back(std::move(rec));
    }
  }

  /// One ad-hoc record (benches whose results are not tabular). Values go
  /// through the same number/bool/string detection as table cells.
  void AddRecord(
      const std::string& tag,
      const std::vector<std::pair<std::string, std::string>>& fields) {
    std::string rec = "{\"table\": " + Quote(tag);
    for (const auto& [key, value] : fields) {
      rec += ", \"" + SanitizeKey(key) + "\": " + EncodeValue(value);
    }
    rec += "}";
    records_.push_back(std::move(rec));
  }

  /// Writes BENCH_<name>.json (also called by the destructor). Returns
  /// false when the file cannot be created.
  bool Write() {
    written_ = true;
    std::string path = BenchJsonDir() + "/BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\"bench\": %s, \"schema_version\": 1, \"records\": [",
                 Quote(name_).c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(out, "%s\n  %s", i == 0 ? "" : ",", records_[i].c_str());
    }
    std::fprintf(out, "\n]}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          q += "\\\"";
          break;
        case '\\':
          q += "\\\\";
          break;
        case '\n':
          q += "\\n";
          break;
        case '\t':
          q += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            q += buf;
          } else {
            q += c;
          }
      }
    }
    q += "\"";
    return q;
  }

  static std::string EncodeValue(const std::string& cell) {
    if (cell == "true" || cell == "false") return cell;
    if (cell == "yes") return "true";
    if (cell == "no") return "false";
    if (!cell.empty()) {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      // A fully-consumed, finite parse is a number ("inf"/"nan" parse but
      // are not valid JSON tokens — keep them as strings).
      if (end != nullptr && *end == '\0' && end != cell.c_str() &&
          std::isfinite(v)) {
        return cell;
      }
    }
    return Quote(cell);
  }

  std::string name_;
  std::vector<std::string> records_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace ccam

#endif  // CCAM_BENCH_BENCH_UTIL_H_
