// Reproduces Figure 7 of the paper: "Effect of the Reorganization
// Policies" — two panels: (left) average Insert() I/O and (right) CRR,
// both as functions of the number of insertions, while inserting 20% of
// the Minneapolis map's nodes under the first-order, second-order and
// higher-order policies.
//
// Setup: build CCAM statically on the subnetwork induced by a random 80%
// of the nodes, then insert the remaining 20% one at a time (each record
// carries its full adjacency list; edges to still-absent nodes materialize
// when those nodes arrive). Block size 1 KiB.
//
// Expected shape: higher-order I/O far above first/second order (which are
// nearly equal); first-order CRR lowest; higher-order CRR slightly above
// second-order; CRR drifts down as insertions accumulate.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/random.h"

namespace ccam {
namespace bench {
namespace {

struct Track {
  std::vector<double> avg_io;  // cumulative average insert I/O
  std::vector<double> crr;
};

int Run() {
  Network net = PaperNetwork();
  Random rng(2024);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  size_t n_insert = net.NumNodes() / 5;
  std::vector<NodeId> to_insert(ids.begin(), ids.begin() + n_insert);
  std::vector<NodeId> base_ids(ids.begin() + n_insert, ids.end());
  Network base = net.InducedSubnetwork(base_ids);

  std::printf("Figure 7: reorganization policies while inserting %zu nodes "
              "(20%%) into a CCAM built on the other %zu (block = 1 KiB)\n\n",
              n_insert, base_ids.size());

  const int kCheckpointEvery = 20;
  // The three policies of Table 1, plus the table's sketched "lazy or
  // delayed reorganization policy" (our extension): first-order updates
  // with {P} u NbrPages(P) reclustered after every 10 updates to P.
  std::vector<ReorgPolicy> policies = {ReorgPolicy::kFirstOrder,
                                       ReorgPolicy::kSecondOrder,
                                       ReorgPolicy::kHigherOrder,
                                       ReorgPolicy::kFirstOrder};
  const size_t kLazyIndex = 3;
  std::vector<Track> tracks(policies.size());
  std::vector<int> checkpoints;

  for (size_t pi = 0; pi < policies.size(); ++pi) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    Ccam am(options, CcamCreateMode::kStatic);
    Status s = am.Create(base);
    if (!s.ok()) {
      std::fprintf(stderr, "create failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (pi == kLazyIndex) am.EnableLazyReorganization(10);
    // The CRR during the run is measured against the part of the network
    // present in the file so far.
    std::vector<NodeId> present = base_ids;
    uint64_t total_io = 0;
    int inserted = 0;
    for (NodeId id : to_insert) {
      NodeRecord rec = NodeRecord::FromNetworkNode(id, net.node(id));
      am.ResetIoStats();
      s = am.InsertNode(rec, policies[pi]);
      if (!s.ok()) {
        std::fprintf(stderr, "insert %u failed: %s\n", id,
                     s.ToString().c_str());
        return 1;
      }
      total_io += am.DataIoStats().Accesses();
      present.push_back(id);
      ++inserted;
      if (inserted % kCheckpointEvery == 0) {
        Network visible = net.InducedSubnetwork(present);
        tracks[pi].avg_io.push_back(static_cast<double>(total_io) /
                                    inserted);
        tracks[pi].crr.push_back(ComputeCrr(visible, am.PageMap()));
        if (pi == 0) checkpoints.push_back(inserted);
      }
    }
  }

  BenchJsonWriter json("fig7_reorg_policies");
  std::printf("Panel (a): cumulative average Insert() data-page accesses\n");
  TablePrinter io_table({"#inserts", "first-order", "second-order",
                         "higher-order", "lazy(10)"});
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    io_table.AddRow({std::to_string(checkpoints[c]),
                     Fmt(tracks[0].avg_io[c], 2), Fmt(tracks[1].avg_io[c], 2),
                     Fmt(tracks[2].avg_io[c], 2),
                     Fmt(tracks[3].avg_io[c], 2)});
  }
  io_table.Print();
  json.AddTable("insert_io", io_table);

  std::printf("\nPanel (b): CRR after N insertions\n");
  TablePrinter crr_table({"#inserts", "first-order", "second-order",
                          "higher-order", "lazy(10)"});
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    crr_table.AddRow({std::to_string(checkpoints[c]),
                      Fmt(tracks[0].crr[c], 4), Fmt(tracks[1].crr[c], 4),
                      Fmt(tracks[2].crr[c], 4), Fmt(tracks[3].crr[c], 4)});
  }
  crr_table.Print();
  json.AddTable("crr_after_inserts", crr_table);

  std::printf(
      "\nExpected shape (paper Fig. 7): higher-order I/O much higher than "
      "first/second order, which are close; first-order CRR lowest; "
      "higher-order CRR slightly above second-order. Second-order is the "
      "paper's recommended policy.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
