// Shard scaling: the same route workload replayed against the sharded
// network file at 1 / 2 / 4 / 8 shards, against an unsharded oracle.
//
// What the table shows, in the paper's currency of page accesses: the
// single-shard configuration is the unsharded file (same partitioner, same
// pages — the accounting must match the baseline exactly), and each
// doubling of the shard count trades a larger halo (boundary-node copies)
// for smaller per-shard files. Route results must be identical at every
// shard count — sharding is a layout, never an approximation — so the
// "mismatches" column must read 0 throughout.
//
// Route count defaults to 200; override with CCAM_SHARD_ROUTES (the
// check_perf.sh smoke run uses a small value). Every cell is also emitted
// into BENCH_shard_scaling.json (bench_util schema); the deterministic
// columns (reads, cut edges, crossings, halo, mismatches) are compared
// exactly by scripts/check_perf.sh, the wall-clock/qps columns within
// tolerance.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"
#include "src/shard/shard_query.h"
#include "src/shard/sharded_network_file.h"

namespace ccam {
namespace bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int RouteCount() {
  if (const char* env = std::getenv("CCAM_SHARD_ROUTES")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 200;
}

int Run() {
  const int kRoutes = RouteCount();
  Network net = GenerateMinneapolisLikeMap(1995);
  std::vector<Route> routes =
      GenerateRandomWalkRoutes(net, kRoutes, /*length=*/12, /*seed=*/7);

  std::printf("Shard scaling: %d random-walk routes over %zu nodes / %zu "
              "edges, cold 8-page pools per shard (block = 1 KiB)\n\n",
              kRoutes, net.NumNodes(), net.NumEdges());

  AccessMethodOptions base;
  base.page_size = 1024;
  base.buffer_pool_pages = 8;

  // Unsharded oracle: answers and the 1-shard accounting baseline.
  Ccam oracle(base, CcamCreateMode::kStatic);
  Status created = oracle.Create(net);
  if (!created.ok()) {
    std::fprintf(stderr, "oracle create failed: %s\n",
                 created.message().c_str());
    return 1;
  }
  auto oracle_session = oracle.OpenSession();
  std::vector<RouteEvalResult> expected;
  expected.reserve(routes.size());
  for (const Route& route : routes) {
    auto r = EvaluateRoute(oracle_session.get(), route);
    if (!r.ok()) {
      std::fprintf(stderr, "oracle route failed: %s\n",
                   r.status().message().c_str());
      return 1;
    }
    expected.push_back(*r);
  }
  const uint64_t oracle_reads = oracle_session->DataIoStats().reads;

  TablePrinter table({"shards", "pages", "cut edges", "halo records",
                      "cross-shard routes", "cut crossings", "reads",
                      "mismatches", "create ms", "eval ms", "qps"});
  BenchJsonWriter json("shard_scaling");

  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedOptions sopts;
    sopts.num_shards = shards;
    sopts.am = base;
    ShardedNetworkFile file(sopts);
    auto t0 = std::chrono::steady_clock::now();
    created = file.Create(net);
    double create_ms = MsSince(t0);
    if (!created.ok()) {
      std::fprintf(stderr, "%u shards: create failed: %s\n", shards,
                   created.message().c_str());
      return 1;
    }
    file.ResetIoStats();

    auto session = file.OpenSession();
    size_t multi = 0;
    size_t mismatches = 0;
    uint64_t crossings = 0;
    auto e0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < routes.size(); ++i) {
      auto got = EvaluateRouteSharded(session.get(), routes[i]);
      if (!got.ok()) {
        std::fprintf(stderr, "%u shards: route failed: %s\n", shards,
                     got.status().message().c_str());
        return 1;
      }
      if (got->fanout > 1) ++multi;
      crossings += got->cut_crossings;
      double want = expected[i].total_cost;
      double diff = got->eval.total_cost - want;
      if (diff < 0) diff = -diff;
      if (got->eval.num_edges != expected[i].num_edges ||
          diff > 1e-9 * (1.0 + want)) {
        ++mismatches;
      }
    }
    double eval_ms = MsSince(e0);
    uint64_t reads = session->DataIoStats().reads;

    table.AddRow(
        {std::to_string(shards), std::to_string(file.NumDataPages()),
         std::to_string(file.NumCutEdges()),
         std::to_string(file.TotalHaloRecords()), std::to_string(multi),
         std::to_string(crossings), std::to_string(reads),
         std::to_string(mismatches), Fmt(create_ms, 1), Fmt(eval_ms, 1),
         Fmt(eval_ms > 0.0 ? 1000.0 * routes.size() / eval_ms : 0.0, 0)});

    if (mismatches != 0) {
      std::fprintf(stderr, "%u shards: %zu route mismatches\n", shards,
                   mismatches);
      return 1;
    }
    if (shards == 1 && reads != oracle_reads) {
      std::fprintf(stderr,
                   "1-shard accounting diverged from the unsharded file: "
                   "%llu reads vs %llu\n",
                   static_cast<unsigned long long>(reads),
                   static_cast<unsigned long long>(oracle_reads));
      return 1;
    }
  }

  table.Print();
  json.AddTable("scaling", table);
  std::printf(
      "\nExpected shape: 1 shard reproduces the unsharded file exactly "
      "(same pages, same reads — enforced above). As shards double, cut "
      "edges and halo records grow and cross-shard routes pay stitching "
      "reads at the halo boundary, while per-shard files shrink. "
      "\"mismatches\" must read 0 at every shard count: the shard layout "
      "never changes an answer.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
