// Ablation: the two-way partitioner behind cluster-nodes-into-pages.
//
// The paper adopts Cheng & Wei's ratio-cut "as the basis for our
// connectivity based clustering method" and notes that "other graph
// partitioning methods can also be used" and that "M-way partitioning may
// be used to further improve the result". This ablation quantifies those
// choices: CRR, page count and clustering wall-clock for ratio-cut / FM /
// KL / random, each with and without a pairwise M-way refinement pass.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/partition/recursive_bisection.h"
#include "src/storage/page.h"

namespace ccam {
namespace bench {
namespace {

NodePageMap ToMap(const std::vector<std::vector<NodeId>>& pages) {
  NodePageMap map;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (NodeId id : pages[p]) map[id] = static_cast<PageId>(p);
  }
  return map;
}

int Run() {
  Network net = PaperNetwork();
  std::printf("Ablation: partitioning heuristic behind "
              "cluster-nodes-into-pages (block = 1 KiB)\n\n");

  TablePrinter table({"Partitioner", "CRR", "+refined CRR", "pages",
                      "cluster ms", "refine ms"});
  for (PartitionAlgorithm algo :
       {PartitionAlgorithm::kRatioCut, PartitionAlgorithm::kFm,
        PartitionAlgorithm::kKl, PartitionAlgorithm::kRandom}) {
    ClusterOptions options;
    options.page_capacity = 1024 - SlottedPage::kHeaderSize;
    options.per_record_overhead = SlottedPage::kSlotOverhead;
    options.algorithm = algo;
    options.seed = 42;

    auto t0 = std::chrono::steady_clock::now();
    auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
    auto t1 = std::chrono::steady_clock::now();
    if (!pages.ok()) {
      std::fprintf(stderr, "clustering failed: %s\n",
                   pages.status().ToString().c_str());
      return 1;
    }
    double crr = ComputeCrr(net, ToMap(*pages));

    std::vector<std::vector<NodeId>> refined = *pages;
    auto t2 = std::chrono::steady_clock::now();
    RefinePagesPairwise(net, &refined, options, 2);
    auto t3 = std::chrono::steady_clock::now();
    double crr_refined = ComputeCrr(net, ToMap(refined));

    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    table.AddRow({PartitionAlgorithmName(algo), Fmt(crr, 4),
                  Fmt(crr_refined, 4), std::to_string(pages->size()),
                  Fmt(ms(t0, t1), 1), Fmt(ms(t2, t3), 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: ratio-cut and FM well above random; pairwise "
      "refinement never hurts and mostly helps; random clustering is the "
      "floor.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
