// Ablation: the two-way partitioner behind cluster-nodes-into-pages.
//
// The paper adopts Cheng & Wei's ratio-cut "as the basis for our
// connectivity based clustering method" and notes that "other graph
// partitioning methods can also be used" and that "M-way partitioning may
// be used to further improve the result". This ablation quantifies those
// choices: CRR, page count and clustering wall-clock for ratio-cut / FM /
// KL / random, each with and without a pairwise M-way refinement pass.
// A second table sweeps the clustering thread count per partitioner
// (assignments are bit-identical at every count, so only time varies).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/partition/recursive_bisection.h"
#include "src/storage/page.h"

namespace ccam {
namespace bench {
namespace {

NodePageMap ToMap(const std::vector<std::vector<NodeId>>& pages) {
  NodePageMap map;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (NodeId id : pages[p]) map[id] = static_cast<PageId>(p);
  }
  return map;
}

int Run() {
  Network net = PaperNetwork();
  std::printf("Ablation: partitioning heuristic behind "
              "cluster-nodes-into-pages (block = 1 KiB)\n\n");

  BenchJsonWriter json("ablation_partitioner");
  TablePrinter table({"Partitioner", "CRR", "+refined CRR", "pages",
                      "cluster ms", "refine ms"});
  for (PartitionAlgorithm algo :
       {PartitionAlgorithm::kRatioCut, PartitionAlgorithm::kFm,
        PartitionAlgorithm::kKl, PartitionAlgorithm::kRandom}) {
    ClusterOptions options;
    options.page_capacity = 1024 - SlottedPage::kHeaderSize;
    options.per_record_overhead = SlottedPage::kSlotOverhead;
    options.algorithm = algo;
    options.seed = 42;

    auto t0 = std::chrono::steady_clock::now();
    auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
    auto t1 = std::chrono::steady_clock::now();
    if (!pages.ok()) {
      std::fprintf(stderr, "clustering failed: %s\n",
                   pages.status().ToString().c_str());
      return 1;
    }
    double crr = ComputeCrr(net, ToMap(*pages));

    std::vector<std::vector<NodeId>> refined = *pages;
    auto t2 = std::chrono::steady_clock::now();
    RefinePagesPairwise(net, &refined, options, 2);
    auto t3 = std::chrono::steady_clock::now();
    double crr_refined = ComputeCrr(net, ToMap(refined));

    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    table.AddRow({PartitionAlgorithmName(algo), Fmt(crr, 4),
                  Fmt(crr_refined, 4), std::to_string(pages->size()),
                  Fmt(ms(t0, t1), 1), Fmt(ms(t2, t3), 1)});
  }
  table.Print();
  json.AddTable("partitioners", table);
  std::printf(
      "\nExpected shape: ratio-cut and FM well above random; pairwise "
      "refinement never hurts and mostly helps; random clustering is the "
      "floor.\n");

  // Thread sweep: cluster + refine wall-clock per partitioner. The pages
  // are identical at every thread count by construction; the "same" column
  // verifies that rather than assuming it.
  const std::vector<int> thread_counts = BenchThreadCounts();
  TablePrinter threads_table([&] {
    std::vector<std::string> headers = {"Partitioner"};
    for (int t : thread_counts) {
      headers.push_back("t=" + std::to_string(t) + " ms");
    }
    headers.push_back("same pages");
    return headers;
  }());
  for (PartitionAlgorithm algo :
       {PartitionAlgorithm::kRatioCut, PartitionAlgorithm::kFm,
        PartitionAlgorithm::kKl, PartitionAlgorithm::kRandom}) {
    ClusterOptions options;
    options.page_capacity = 1024 - SlottedPage::kHeaderSize;
    options.per_record_overhead = SlottedPage::kSlotOverhead;
    options.algorithm = algo;
    options.seed = 42;

    std::vector<std::string> row = {PartitionAlgorithmName(algo)};
    std::vector<std::vector<NodeId>> reference;
    bool identical = true;
    for (int threads : thread_counts) {
      options.num_threads = threads;
      auto t0 = std::chrono::steady_clock::now();
      auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
      if (!pages.ok()) {
        row.push_back("fail");
        identical = false;
        continue;
      }
      RefinePagesPairwise(net, &*pages, options, 2);
      auto t1 = std::chrono::steady_clock::now();
      row.push_back(
          Fmt(std::chrono::duration<double, std::milli>(t1 - t0).count(), 1));
      if (reference.empty()) {
        reference = std::move(*pages);
      } else if (*pages != reference) {
        identical = false;
      }
    }
    row.push_back(identical ? "yes" : "NO");
    threads_table.AddRow(std::move(row));
  }
  std::printf("\nCluster + refine wall-clock vs thread count "
              "(CCAM_BENCH_THREADS to override)\n\n");
  threads_table.Print();
  json.AddTable("thread_sweep", threads_table);
  std::printf(
      "\nSpeedup requires real cores; on a single-CPU host the sweep "
      "demonstrates the determinism contract only.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ccam

int main() { return ccam::bench::Run(); }
